/**
 * @file
 * Fault-spec parsing and per-snapshot fault resolution.
 */

#include "sim/fault_model.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace ditile::sim {

const char *
faultKindToken(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TileFail: return "tile";
      case FaultKind::HLinkFail: return "hlink";
      case FaultKind::VLinkFail: return "vlink";
      case FaultKind::BypassStuckOpen: return "bypass-open";
      case FaultKind::BypassStuckClosed: return "bypass-closed";
      case FaultKind::DramTransient: return "dram";
    }
    DITILE_PANIC("unreachable fault kind");
}

FaultKind
faultKindFromToken(const std::string &token)
{
    for (FaultKind kind : {FaultKind::TileFail, FaultKind::HLinkFail,
                           FaultKind::VLinkFail,
                           FaultKind::BypassStuckOpen,
                           FaultKind::BypassStuckClosed,
                           FaultKind::DramTransient}) {
        if (token == faultKindToken(kind))
            return kind;
    }
    DITILE_THROW("unknown fault kind '", token, "'");
}

bool
operator==(const FaultEvent &a, const FaultEvent &b)
{
    return a.kind == b.kind && a.snapshot == b.snapshot &&
        a.row == b.row && a.col == b.col && a.channel == b.channel;
}

bool
operator==(const FaultSpec &a, const FaultSpec &b)
{
    return a.seed == b.seed &&
        a.dramRetryFraction == b.dramRetryFraction &&
        a.nocBackoffCycles == b.nocBackoffCycles &&
        a.nocMaxRetries == b.nocMaxRetries && a.events == b.events;
}

namespace {

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Parse a nonnegative integer covering the whole string. */
long long
parseWholeInt(const std::string &s, const std::string &item)
{
    if (s.empty())
        DITILE_THROW("fault spec item '", item, "': missing number");
    char *end = nullptr;
    const long long v = std::strtoll(s.c_str(), &end, 10);
    if (end != s.c_str() + s.size() || v < 0)
        DITILE_THROW("fault spec item '", item, "': bad number '", s,
                     "'");
    return v;
}

/** Parse a coordinate at `pos`: digits or the '*' wildcard. */
int
parseCoord(const std::string &s, std::size_t &pos,
           const std::string &item)
{
    if (pos < s.size() && s[pos] == '*') {
        ++pos;
        return kAnyCoord;
    }
    const std::size_t start = pos;
    while (pos < s.size() &&
           std::isdigit(static_cast<unsigned char>(s[pos]))) {
        ++pos;
    }
    if (pos == start)
        DITILE_THROW("fault spec item '", item,
                     "': expected coordinate at '", s.substr(start),
                     "'");
    return static_cast<int>(
        parseWholeInt(s.substr(start, pos - start), item));
}

void
expectPrefix(const std::string &s, std::size_t &pos, const char *prefix,
             const std::string &item)
{
    for (const char *p = prefix; *p; ++p, ++pos) {
        if (pos >= s.size() || s[pos] != *p)
            DITILE_THROW("fault spec item '", item, "': expected '",
                         prefix, "' in location '", s, "'");
    }
}

FaultEvent
parseEvent(const std::string &item)
{
    const std::size_t at = item.find('@');
    const std::size_t colon = item.find(':', at);
    if (at == std::string::npos || colon == std::string::npos)
        DITILE_THROW("fault spec item '", item,
                     "': expected kind@snapshot:location");

    FaultEvent e;
    e.kind = faultKindFromToken(item.substr(0, at));
    e.snapshot = static_cast<SnapshotId>(
        parseWholeInt(item.substr(at + 1, colon - at - 1), item));

    const std::string loc = item.substr(colon + 1);
    std::size_t pos = 0;
    switch (e.kind) {
      case FaultKind::TileFail:
      case FaultKind::HLinkFail:
      case FaultKind::VLinkFail:
        expectPrefix(loc, pos, "r", item);
        e.row = parseCoord(loc, pos, item);
        expectPrefix(loc, pos, "c", item);
        e.col = parseCoord(loc, pos, item);
        break;
      case FaultKind::BypassStuckOpen:
      case FaultKind::BypassStuckClosed:
        expectPrefix(loc, pos, "c", item);
        e.col = parseCoord(loc, pos, item);
        break;
      case FaultKind::DramTransient:
        expectPrefix(loc, pos, "ch", item);
        e.channel = parseCoord(loc, pos, item);
        break;
    }
    if (pos != loc.size())
        DITILE_THROW("fault spec item '", item,
                     "': trailing text after location");
    return e;
}

std::string
coordText(int v)
{
    return v == kAnyCoord ? std::string("*") : std::to_string(v);
}

} // namespace

FaultSpec
FaultSpec::parse(const std::string &text)
{
    FaultSpec spec;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t semi = text.find(';', pos);
        const std::size_t end =
            semi == std::string::npos ? text.size() : semi;
        const std::string item = trim(text.substr(pos, end - pos));
        pos = end + 1;
        if (item.empty())
            continue;
        const std::size_t eq = item.find('=');
        if (eq != std::string::npos &&
            item.find('@') == std::string::npos) {
            const std::string key = trim(item.substr(0, eq));
            const std::string value = trim(item.substr(eq + 1));
            if (key == "seed") {
                spec.seed = static_cast<std::uint64_t>(
                    parseWholeInt(value, item));
            } else if (key == "dram-retry-fraction") {
                char *endp = nullptr;
                const double f = std::strtod(value.c_str(), &endp);
                if (value.empty() ||
                    endp != value.c_str() + value.size() || f < 0.0 ||
                    f > 1.0) {
                    DITILE_THROW("fault spec item '", item,
                                 "': fraction must be in [0, 1]");
                }
                spec.dramRetryFraction = f;
            } else if (key == "noc-backoff") {
                spec.nocBackoffCycles = static_cast<Cycle>(
                    parseWholeInt(value, item));
            } else if (key == "noc-retries") {
                spec.nocMaxRetries = static_cast<int>(
                    parseWholeInt(value, item));
            } else {
                DITILE_THROW("fault spec item '", item,
                             "': unknown option '", key, "'");
            }
        } else {
            spec.events.push_back(parseEvent(item));
        }
    }
    return spec;
}

void
FaultSpec::merge(const FaultSpec &other)
{
    seed = other.seed;
    dramRetryFraction = other.dramRetryFraction;
    nocBackoffCycles = other.nocBackoffCycles;
    nocMaxRetries = other.nocMaxRetries;
    events.insert(events.end(), other.events.begin(),
                  other.events.end());
}

std::string
FaultSpec::toString() const
{
    std::string out;
    const auto add = [&out](const std::string &item) {
        if (!out.empty())
            out += ';';
        out += item;
    };
    const FaultSpec defaults;
    if (seed != defaults.seed)
        add("seed=" + std::to_string(seed));
    if (dramRetryFraction != defaults.dramRetryFraction) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", dramRetryFraction);
        add(std::string("dram-retry-fraction=") + buf);
    }
    if (nocBackoffCycles != defaults.nocBackoffCycles)
        add("noc-backoff=" + std::to_string(nocBackoffCycles));
    if (nocMaxRetries != defaults.nocMaxRetries)
        add("noc-retries=" + std::to_string(nocMaxRetries));
    for (const FaultEvent &e : events) {
        std::string item = std::string(faultKindToken(e.kind)) + "@" +
            std::to_string(e.snapshot) + ":";
        switch (e.kind) {
          case FaultKind::TileFail:
          case FaultKind::HLinkFail:
          case FaultKind::VLinkFail:
            item += "r" + coordText(e.row) + "c" + coordText(e.col);
            break;
          case FaultKind::BypassStuckOpen:
          case FaultKind::BypassStuckClosed:
            item += "c" + coordText(e.col);
            break;
          case FaultKind::DramTransient:
            item += "ch" + coordText(e.channel);
            break;
        }
        add(item);
    }
    return out;
}

FaultModel::FaultModel(const FaultSpec &spec,
                       const AcceleratorConfig &hw,
                       SnapshotId num_snapshots)
    : spec_(spec)
{
    DITILE_ASSERT(num_snapshots >= 1);
    const int rows = hw.tileRows;
    const int cols = hw.tileCols;
    const int channels = hw.dram.channels;
    const bool grid_links =
        hw.noc.topology != noc::TopologyKind::Crossbar;
    const bool has_bypass =
        hw.noc.topology == noc::TopologyKind::Reconfigurable;

    const auto checkCoord = [](int v, int limit, const char *what) {
        if (v != kAnyCoord && (v < 0 || v >= limit))
            DITILE_THROW("fault ", what, " ", v, " out of range [0, ",
                         limit, ")");
    };
    for (const FaultEvent &e : spec_.events) {
        if (e.snapshot < 0)
            DITILE_THROW("fault snapshot ", e.snapshot,
                         " must be nonnegative");
        switch (e.kind) {
          case FaultKind::TileFail:
          case FaultKind::HLinkFail:
          case FaultKind::VLinkFail:
            checkCoord(e.row, rows, "row");
            checkCoord(e.col, cols, "col");
            break;
          case FaultKind::BypassStuckOpen:
          case FaultKind::BypassStuckClosed:
            checkCoord(e.col, cols, "col");
            break;
          case FaultKind::DramTransient:
            checkCoord(e.channel, channels, "channel");
            break;
        }
    }
    if (spec_.nocMaxRetries < 0)
        DITILE_THROW("noc-retries must be nonnegative");

    // Expand a possibly-wildcard coordinate over [0, n).
    const auto forCoord = [](int v, int n, auto &&fn) {
        if (v == kAnyCoord) {
            for (int i = 0; i < n; ++i)
                fn(i);
        } else {
            fn(v);
        }
    };

    per_snapshot_.resize(static_cast<std::size_t>(num_snapshots));
    std::uint64_t dram_total = 0;
    for (SnapshotId t = 0; t < num_snapshots; ++t) {
        FaultSet &fs = per_snapshot_[static_cast<std::size_t>(t)];
        fs.noc.retryBackoffCycles = spec_.nocBackoffCycles;
        fs.noc.maxRetries = spec_.nocMaxRetries;

        std::vector<std::uint8_t> dead(
            static_cast<std::size_t>(rows * cols), 0);
        bool any_dead = false;
        std::vector<int> span_ov(static_cast<std::size_t>(cols), 0);
        bool any_ov = false;
        std::vector<std::uint8_t> dram_ch(
            static_cast<std::size_t>(channels), 0);

        for (const FaultEvent &e : spec_.events) {
            const bool permanent_active = e.snapshot <= t;
            switch (e.kind) {
              case FaultKind::TileFail:
                if (!permanent_active)
                    break;
                forCoord(e.row, rows, [&](int r) {
                    forCoord(e.col, cols, [&](int c) {
                        dead[static_cast<std::size_t>(r * cols + c)] =
                            1;
                        any_dead = true;
                    });
                });
                break;
              case FaultKind::HLinkFail:
              case FaultKind::VLinkFail:
                if (!permanent_active)
                    break;
                if (!grid_links) {
                    // Site key embeds the kind (bounded set), not the
                    // topology name: one warning per kind per process.
                    warnOnce(std::string("ignoring ") +
                                 faultKindToken(e.kind) +
                                 " fault: no grid links",
                             "; topology '",
                             noc::topologyKindName(hw.noc.topology),
                             "' has none");
                    break;
                }
                forCoord(e.row, rows, [&](int r) {
                    forCoord(e.col, cols, [&](int c) {
                        const TileId from = r * cols + c;
                        if (e.kind == FaultKind::HLinkFail) {
                            // Both directions of the row-ring segment
                            // (r, c) <-> (r, c+1) die.
                            const TileId to =
                                r * cols + (c + 1) % cols;
                            fs.noc.deadLinks.push_back(noc::gridLinkId(
                                from, noc::GridDir::East));
                            fs.noc.deadLinks.push_back(noc::gridLinkId(
                                to, noc::GridDir::West));
                        } else {
                            // Both directions of the column-ring
                            // segment (r, c) <-> (r+1, c) die.
                            const TileId to =
                                ((r + 1) % rows) * cols + c;
                            fs.noc.deadLinks.push_back(noc::gridLinkId(
                                from, noc::GridDir::South));
                            fs.noc.deadLinks.push_back(noc::gridLinkId(
                                to, noc::GridDir::North));
                        }
                    });
                });
                break;
              case FaultKind::BypassStuckOpen:
              case FaultKind::BypassStuckClosed:
                if (!permanent_active)
                    break;
                if (!has_bypass) {
                    warnOnce(std::string("ignoring ") +
                                 faultKindToken(e.kind) +
                                 " fault: no bypass switches",
                             "; topology '",
                             noc::topologyKindName(hw.noc.topology),
                             "' has none");
                    break;
                }
                forCoord(e.col, cols, [&](int c) {
                    span_ov[static_cast<std::size_t>(c)] =
                        e.kind == FaultKind::BypassStuckOpen
                            ? 1
                            : hw.noc.reLinkSpan;
                    any_ov = true;
                });
                break;
              case FaultKind::DramTransient:
                if (e.snapshot != t)
                    break;
                forCoord(e.channel, channels, [&](int ch) {
                    dram_ch[static_cast<std::size_t>(ch)] = 1;
                });
                break;
            }
        }

        if (any_dead)
            fs.deadTile = std::move(dead);
        std::sort(fs.noc.deadLinks.begin(), fs.noc.deadLinks.end());
        fs.noc.deadLinks.erase(std::unique(fs.noc.deadLinks.begin(),
                                           fs.noc.deadLinks.end()),
                               fs.noc.deadLinks.end());
        if (any_ov)
            fs.noc.columnSpanOverride = std::move(span_ov);
        fs.dramFaultChannels = static_cast<int>(
            std::count(dram_ch.begin(), dram_ch.end(), 1));
        dram_total += static_cast<std::uint64_t>(fs.dramFaultChannels);
    }

    const FaultSet &last = per_snapshot_.back();
    tile_faults_ = static_cast<std::uint64_t>(
        std::count(last.deadTile.begin(), last.deadTile.end(), 1));
    link_faults_ =
        static_cast<std::uint64_t>(last.noc.deadLinks.size()) / 2;
    bypass_faults_ = static_cast<std::uint64_t>(
        std::count_if(last.noc.columnSpanOverride.begin(),
                      last.noc.columnSpanOverride.end(),
                      [](int v) { return v != 0; }));
    dram_faults_ = dram_total;
}

const FaultSet &
FaultModel::at(SnapshotId t) const
{
    DITILE_ASSERT(t >= 0 && static_cast<std::size_t>(t) <
                                per_snapshot_.size());
    return per_snapshot_[static_cast<std::size_t>(t)];
}

std::uint64_t
FaultModel::degradedSnapshots() const
{
    std::uint64_t n = 0;
    for (const FaultSet &fs : per_snapshot_) {
        if (fs.degraded())
            ++n;
    }
    return n;
}

} // namespace ditile::sim
