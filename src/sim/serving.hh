/**
 * @file
 * Re-entrant plan+execute entry for concurrent tenants.
 *
 * The batch CLIs call Accelerator::plan()/execute() from one thread
 * per accelerator object, which lets the concrete accelerators keep
 * convenience state from the last run (DiTileAccelerator::lastPlan()
 * et al.). The serving tier breaks that assumption: one logical
 * accelerator answers queries for many tenants concurrently inside a
 * parallelFor batch.
 *
 * ConcurrentRunner restores re-entrancy by construction instead of by
 * locking: every infer() builds a *fresh* accelerator instance from
 * the injected factory, so all mutable planner state is confined to
 * the call. The expensive part of planning — the per-snapshot
 * SnapshotPlans — is shared through the internally synchronized
 * PlanCache, so a fresh instance per call costs only the cheap
 * front-end passes on cache hits (and on a quiet tenant the whole
 * plan-key lookup hits). executePlan() itself is already safe for
 * concurrent callers: it is a pure replay over const inputs, and its
 * internal parallelFor nests safely in the global pool.
 */

#ifndef DITILE_SIM_SERVING_HH
#define DITILE_SIM_SERVING_HH

#include <atomic>
#include <functional>
#include <memory>

#include "sim/accelerator.hh"
#include "sim/fault_model.hh"
#include "sim/plan_cache.hh"

namespace ditile::sim {

/** Builds a fresh accelerator instance per call. */
using AcceleratorFactory =
    std::function<std::unique_ptr<Accelerator>()>;

/**
 * Thread-safe inference front end over one accelerator family and one
 * shared PlanCache.
 */
class ConcurrentRunner
{
  public:
    explicit ConcurrentRunner(AcceleratorFactory factory);

    /**
     * Plan (through the shared cache) and execute one inference.
     * Safe to call concurrently from pool workers; results are a pure
     * function of (dg, config, faults), independent of interleaving.
     * A non-empty fault spec is spliced into the execution plan; a
     * spec that does not resolve against the hardware throws
     * InputError from inside execution — typed and recoverable, which
     * the serving tier turns into `err exec` plus breaker feedback.
     */
    RunResult infer(const graph::DynamicGraph &dg,
                    const model::DgnnConfig &config,
                    const FaultSpec &faults = FaultSpec{});

    /**
     * Whether a plan for these inputs is already cached. Only
     * meaningful from serial program points: under concurrency the
     * answer may be stale by the time infer() runs.
     */
    bool planned(const graph::DynamicGraph &dg,
                 const model::DgnnConfig &config) const;

    /**
     * The cache key infer() will use for these inputs, or 0 while the
     * algorithm is still unlatched (empty cache, nothing predicted).
     * Serial points only, like planned().
     */
    std::uint64_t planKeyFor(const graph::DynamicGraph &dg,
                             const model::DgnnConfig &config) const;

    /**
     * The update algorithm latched from the first built plan, as an
     * int for checkpointing; -1 while unknown. latchAlgo() restores a
     * checkpointed value so hit predictions survive a restart with a
     * cold cache (pass -1 to leave unlatched).
     */
    int algoIfKnown() const;
    void latchAlgo(int algo);

    PlanCache &planCache() { return cache_; }
    const PlanCache &planCache() const { return cache_; }

    /**
     * Execute through the task-graph overlap scheduler (default) or
     * the legacy staged timeline. The serving tier reports latency to
     * tenants, so it defaults to the pipelined model; set false to
     * reproduce the staged reference. Configure from serial program
     * points only (not synchronized against in-flight infer calls).
     */
    void setOverlap(bool overlap) { overlap_ = overlap; }
    bool overlap() const { return overlap_; }

  private:
    AcceleratorFactory factory_;
    model::AlgoKind algo_;
    std::atomic<bool> algoKnown_{false};
    bool overlap_ = true;
    PlanCache cache_;
};

} // namespace ditile::sim

#endif // DITILE_SIM_SERVING_HH
