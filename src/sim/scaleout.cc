/**
 * @file
 * ChipCluster execution: shard, replay per chip, schedule the cluster
 * task graph.
 */

#include "sim/scaleout.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"
#include "common/trace.hh"
#include "sim/execution_plan.hh"
#include "sim/plan_cache.hh"
#include "sim/scheduler.hh"
#include "sim/task_graph.hh"
#include "workload/chunk_partition.hh"

namespace ditile::sim {

namespace {

/** Cluster node ids are snapshot-major: every snapshot but the last
 * holds `chips` ChipCompute nodes then `chips` InterChipComm nodes;
 * the last snapshot holds only the compute nodes. */
int
computeNodeId(SnapshotId t, int chip, int chips)
{
    return static_cast<int>(t) * 2 * chips + chip;
}

int
commNodeId(SnapshotId t, int chip, int chips)
{
    return static_cast<int>(t) * 2 * chips + chips + chip;
}

/** Chunk owner of a global vertex under the recorded assignment. */
int
chipOfVertex(const ScaleOutSpec &spec, VertexId v)
{
    return spec.chipOfChunk[static_cast<std::size_t>(
        v / spec.chunkSpan)];
}

void
validateSpec(const ScaleOutSpec &spec, VertexId num_vertices)
{
    DITILE_ASSERT(spec.chips > 1, "scale-out run needs chips > 1");
    if (spec.chunkSpan < 1)
        DITILE_THROW("scale-out chunk span must be >= 1");
    const auto expected = static_cast<std::size_t>(
        (num_vertices + spec.chunkSpan - 1) / spec.chunkSpan);
    if (spec.chipOfChunk.size() != expected) {
        DITILE_THROW("scale-out assignment covers ",
                     spec.chipOfChunk.size(), " chunk(s), workload has ",
                     expected);
    }
    for (const int c : spec.chipOfChunk) {
        if (c < 0 || c >= spec.chips)
            DITILE_THROW("scale-out assignment names chip ", c,
                         " outside [0, ", spec.chips, ")");
    }
}

/** Restrict a global vertex partition to a shard (owners kept). */
graph::VertexPartition
restrictPartition(const graph::VertexPartition &global,
                  const std::vector<VertexId> &global_ids)
{
    if (global.numParts() == 0)
        return {};
    graph::VertexPartition shard(
        static_cast<VertexId>(global_ids.size()), global.numParts());
    for (std::size_t i = 0; i < global_ids.size(); ++i) {
        const int owner = global.owner(global_ids[i]);
        if (owner != kInvalidTile)
            shard.assign(static_cast<VertexId>(i), owner);
    }
    return shard;
}

} // namespace

void
applyScaleOut(ExecutionPlan &plan, const graph::DynamicGraph &dg,
              int chips, const noc::InterChipLinkConfig &link)
{
    if (chips <= 1) {
        plan.scaleout = ScaleOutSpec{};
        return;
    }
    workload::ChunkPartitionOptions options;
    options.chips = chips;
    const workload::ChunkPartition cp =
        workload::buildChunkPartition(dg, options);
    plan.scaleout.chips = chips;
    plan.scaleout.link = link;
    plan.scaleout.chunkSpan = cp.chunkSpan;
    plan.scaleout.chipOfChunk = cp.chipOfChunk;
}

TaskGraph
buildClusterTaskGraph(const ExecutionPlan &plan)
{
    const int chips = plan.scaleout.chips;
    const SnapshotId num_snapshots = plan.numSnapshots();
    TaskGraph g;

    // Lanes in canonical order: chip compute lanes ascending, then the
    // per-chip egress link lanes ascending.
    std::vector<int> chip_lane(static_cast<std::size_t>(chips));
    std::vector<int> link_lane(static_cast<std::size_t>(chips));
    for (int c = 0; c < chips; ++c)
        chip_lane[static_cast<std::size_t>(c)] =
            g.addLane(LaneKind::Chip, c);
    for (int c = 0; c < chips; ++c)
        link_lane[static_cast<std::size_t>(c)] =
            g.addLane(LaneKind::InterChipLink, c);

    // Nodes snapshot-major so ids ascend with t within every kind.
    for (SnapshotId t = 0; t < num_snapshots; ++t) {
        for (int c = 0; c < chips; ++c) {
            g.addTask(TaskKind::ChipCompute, t,
                      chip_lane[static_cast<std::size_t>(c)]);
        }
        if (t + 1 < num_snapshots) {
            for (int c = 0; c < chips; ++c) {
                g.addTask(TaskKind::InterChipComm, t,
                          link_lane[static_cast<std::size_t>(c)]);
            }
        }
    }

    // Dependencies. Overlap: a chip's boundary exchange waits only for
    // that chip's own snapshot, and the next snapshot of every *other*
    // chip waits for the exchange — so a finished chip streams its
    // halo while slower chips still compute. Staged (--no-overlap)
    // adds the barrier edges: every exchange waits for every chip's
    // snapshot and gates every chip's next snapshot, a strict superset
    // of the overlap dependencies (staged makespan >= overlap).
    const bool overlap = plan.options.overlap;
    for (SnapshotId t = 0; t < num_snapshots; ++t) {
        for (int c = 0; c < chips; ++c) {
            if (t > 0) {
                g.addDep(computeNodeId(t - 1, c, chips),
                         computeNodeId(t, c, chips));
            }
            if (t + 1 < num_snapshots) {
                if (overlap) {
                    g.addDep(computeNodeId(t, c, chips),
                             commNodeId(t, c, chips));
                } else {
                    for (int o = 0; o < chips; ++o)
                        g.addDep(computeNodeId(t, o, chips),
                                 commNodeId(t, c, chips));
                }
                for (int o = 0; o < chips; ++o) {
                    if (overlap && o == c)
                        continue;
                    g.addDep(commNodeId(t, c, chips),
                             computeNodeId(t + 1, o, chips));
                }
            }
        }
    }
    return g;
}

RunResult
runScaleOut(const graph::DynamicGraph &dg, const ExecutionPlan &plan,
            PlanCache *cache)
{
    const ScaleOutSpec &spec = plan.scaleout;
    const int chips = spec.chips;
    const auto chips_sz = static_cast<std::size_t>(chips);
    const VertexId num_vertices = dg.numVertices();
    const SnapshotId num_snapshots = dg.numSnapshots();
    validateSpec(spec, num_vertices);

    // ---- Shard the vertex universe per the recorded assignment.
    std::vector<std::vector<VertexId>> global_ids(chips_sz);
    std::vector<VertexId> local_id(
        static_cast<std::size_t>(num_vertices));
    for (VertexId v = 0; v < num_vertices; ++v) {
        auto &ids =
            global_ids[static_cast<std::size_t>(chipOfVertex(spec, v))];
        local_id[static_cast<std::size_t>(v)] =
            static_cast<VertexId>(ids.size());
        ids.push_back(v);
    }
    for (int c = 0; c < chips; ++c) {
        if (global_ids[static_cast<std::size_t>(c)].empty())
            DITILE_THROW("scale-out assignment leaves chip ", c,
                         " empty");
    }

    // One edge scan per snapshot: intra-chip edges become the shard
    // adjacency; cross-chip adjacency entries are counted per source
    // chip (each endpoint's chip must ship that vertex's state to the
    // other side, so an edge contributes one entry in each direction).
    std::vector<std::vector<std::vector<graph::Edge>>> shard_edges(
        chips_sz);
    for (auto &per_chip : shard_edges)
        per_chip.resize(static_cast<std::size_t>(num_snapshots));
    std::vector<std::uint64_t> egress_adj(
        static_cast<std::size_t>(num_snapshots) * chips_sz, 0);
    for (SnapshotId t = 0; t < num_snapshots; ++t) {
        auto *egress =
            egress_adj.data() + static_cast<std::size_t>(t) * chips_sz;
        for (const auto &[u, v] : dg.snapshot(t).edgeList()) {
            const int cu = chipOfVertex(spec, u);
            const int cv = chipOfVertex(spec, v);
            if (cu == cv) {
                shard_edges[static_cast<std::size_t>(cu)]
                           [static_cast<std::size_t>(t)]
                               .emplace_back(
                                   local_id[static_cast<std::size_t>(u)],
                                   local_id[static_cast<std::size_t>(
                                       v)]);
            } else {
                ++egress[static_cast<std::size_t>(cu)];
                ++egress[static_cast<std::size_t>(cv)];
            }
        }
    }

    // ---- Instantiate and execute the M per-chip plans serially.
    // Shards share `cache` (or a run-local one), keyed per shard by
    // the shard graph's structure hash, so equal shards plan once.
    PlanCache local_cache;
    PlanCache *shard_cache = cache ? cache : &local_cache;
    const std::uint64_t track_base = Tracer::trackBase();
    std::vector<RunResult> chip_results;
    chip_results.reserve(chips_sz);
    for (int c = 0; c < chips; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const auto shard_v =
            static_cast<VertexId>(global_ids[ci].size());
        std::vector<graph::Csr> snaps;
        snaps.reserve(static_cast<std::size_t>(num_snapshots));
        for (SnapshotId t = 0; t < num_snapshots; ++t) {
            snaps.push_back(graph::Csr::fromEdges(
                shard_v, shard_edges[ci][static_cast<std::size_t>(t)]));
        }
        const graph::DynamicGraph shard(
            dg.name() + "#chip" + std::to_string(c), std::move(snaps),
            dg.featureDim());

        MappingSpec shard_mapping;
        shard_mapping.spatialOnly = plan.mapping.spatialOnly;
        shard_mapping.snapshotColumn = plan.mapping.snapshotColumn;
        shard_mapping.rowPartition =
            restrictPartition(plan.mapping.rowPartition,
                              global_ids[ci]);
        shard_mapping.tilePartition =
            restrictPartition(plan.mapping.tilePartition,
                              global_ids[ci]);

        // Disjoint trace track group per chip; restored below.
        Tracer::setTrackBase(track_base +
                             static_cast<std::uint64_t>(c) *
                                 Tracer::kTracksPerRun);
        ExecutionPlan chip_plan = buildEnginePlan(
            shard, plan.modelConfig, plan.hw, shard_mapping,
            plan.options, plan.acceleratorName, shard_cache);
        chip_plan.faults = plan.faults;
        chip_results.push_back(executePlan(shard, chip_plan));
    }
    Tracer::setTrackBase(track_base);

    // ---- Cluster timeline: annotate the cluster DAG and schedule.
    // ChipCompute durations are the chip's monotonized per-snapshot
    // completion increments (overlap inside a chip can finish a later
    // snapshot's trace row early; the chip still occupies its lane in
    // snapshot order), with the chip's timeline tail (config, DRAM
    // drain) folded into its last snapshot so a comm-free cluster
    // reproduces each chip's own makespan exactly.
    const noc::InterChipLink link(spec.link, plan.hw.frequencyGhz);
    const auto z_bytes =
        static_cast<ByteCount>(plan.modelConfig.gnnOutputDim()) *
        static_cast<ByteCount>(plan.modelConfig.bytesPerValue);
    TaskGraph tg = buildClusterTaskGraph(plan);
    ByteCount interchip_payload = 0;
    ByteCount interchip_wire = 0;
    std::uint64_t interchip_transfers = 0;
    Cycle interchip_busy = 0;
    for (int c = 0; c < chips; ++c) {
        const auto ci = static_cast<std::size_t>(c);
        const RunResult &r = chip_results[ci];
        Cycle prev = 0;
        for (SnapshotId t = 0; t < num_snapshots; ++t) {
            const auto ti = static_cast<std::size_t>(t);
            Cycle done = std::max(prev, r.trace[ti].rnnDone);
            if (t + 1 == num_snapshots)
                done = std::max(done, r.totalCycles);
            tg.nodes[static_cast<std::size_t>(
                          computeNodeId(t, c, chips))]
                .duration = done - prev;
            prev = done;
        }
        for (SnapshotId t = 0; t + 1 < num_snapshots; ++t) {
            // The exchange after snapshot t ships the states snapshot
            // t+1's boundary aggregation needs: one GNN-output-wide
            // value per cross-chip adjacency entry sourced on c.
            const ByteCount payload =
                egress_adj[(static_cast<std::size_t>(t) + 1) *
                               chips_sz +
                           ci] *
                z_bytes;
            const Cycle dur = link.transferCycles(payload);
            tg.nodes[static_cast<std::size_t>(commNodeId(t, c, chips))]
                .duration = dur;
            interchip_payload += payload;
            interchip_wire += link.wireBytes(payload);
            interchip_busy += dur;
            if (payload > 0)
                ++interchip_transfers;
        }
    }
    const ScheduleResult sched = scheduleTaskGraph(tg);

    // ---- Merge the per-chip results under the cluster timeline.
    RunResult result;
    result.acceleratorName = plan.acceleratorName;
    result.workloadName = dg.name();
    result.totalCycles = sched.makespan;
    double busy_mac_cycles = 0.0;
    for (const RunResult &r : chip_results) {
        result.computeCycles =
            std::max(result.computeCycles, r.computeCycles);
        result.onChipCommCycles =
            std::max(result.onChipCommCycles, r.onChipCommCycles);
        result.offChipCycles =
            std::max(result.offChipCycles, r.offChipCycles);
        result.configCycles =
            std::max(result.configCycles, r.configCycles);
        result.ops += r.ops;
        result.dramTraffic += r.dramTraffic;
        result.energyEvents += r.energyEvents;
        result.energy += r.energy;
        result.nocBytes += r.nocBytes;
        result.nocBytesTemporal += r.nocBytesTemporal;
        result.nocBytesSpatial += r.nocBytesSpatial;
        result.nocBytesReuse += r.nocBytesReuse;
        result.stats.merge(r.stats);
        busy_mac_cycles +=
            r.peUtilization * static_cast<double>(r.totalCycles);
        // Chip-major trace: chip 0's T rows, then chip 1's, ...
        result.trace.insert(result.trace.end(), r.trace.begin(),
                            r.trace.end());
        if (r.resilience.enabled) {
            const auto &in = r.resilience;
            auto &out = result.resilience;
            out.enabled = true;
            out.injectedTileFaults += in.injectedTileFaults;
            out.injectedLinkFaults += in.injectedLinkFaults;
            out.injectedBypassFaults += in.injectedBypassFaults;
            out.injectedDramFaults += in.injectedDramFaults;
            out.degradedSnapshots += in.degradedSnapshots;
            out.remappedVertices += in.remappedVertices;
            out.reroutedMessages += in.reroutedMessages;
            out.retriedMessages += in.retriedMessages;
            out.nocRetryBackoffCycles += in.nocRetryBackoffCycles;
            out.dramRetryRequests += in.dramRetryRequests;
            out.dramRetryBytes += in.dramRetryBytes;
            out.dramRetryCycles += in.dramRetryCycles;
            out.degradedCapacityFraction +=
                in.degradedCapacityFraction /
                static_cast<double>(chips);
            out.events.insert(out.events.end(), in.events.begin(),
                              in.events.end());
        }
    }
    // Cluster utilization: busy MACs over M chips for the cluster
    // makespan (a stalled chip waiting on the interconnect counts as
    // idle capacity, which is the point of the metric).
    result.peUtilization = sched.makespan > 0
        ? busy_mac_cycles /
            (static_cast<double>(sched.makespan) *
             static_cast<double>(chips))
        : 0.0;

    std::uint64_t cross_adj = 0;
    for (const std::uint64_t e : egress_adj)
        cross_adj += e;
    result.stats.set("scaleout.chips", static_cast<double>(chips));
    result.stats.set("scaleout.cross_adjacencies",
                     static_cast<double>(cross_adj));
    result.stats.set("interchip.payload_bytes",
                     static_cast<double>(interchip_payload));
    result.stats.set("interchip.wire_bytes",
                     static_cast<double>(interchip_wire));
    result.stats.set("interchip.transfers",
                     static_cast<double>(interchip_transfers));
    result.stats.set("interchip.busy_cycles",
                     static_cast<double>(interchip_busy));

    TaskGraphStats &ts = result.taskGraph;
    ts.enabled = true;
    ts.numTasks = tg.nodes.size();
    ts.numEdges = tg.edges.size();
    ts.makespan = sched.makespan;
    ts.lanes.reserve(tg.lanes.size());
    for (std::size_t li = 0; li < tg.lanes.size(); ++li) {
        ts.lanes.push_back({tg.lanes[li].name(),
                            sched.lanes[li].tasks,
                            sched.lanes[li].busyCycles});
    }
    std::vector<bool> critical(tg.nodes.size(), false);
    for (const int id : sched.criticalPath)
        critical[static_cast<std::size_t>(id)] = true;
    ts.tasks.reserve(tg.nodes.size());
    for (const TaskNode &n : tg.nodes) {
        const auto ni = static_cast<std::size_t>(n.id);
        ts.tasks.push_back(
            {n.id, taskKindToken(n.kind), n.snapshot,
             tg.lanes[static_cast<std::size_t>(n.lane)].name(),
             sched.tasks[ni].start, sched.tasks[ni].finish,
             static_cast<bool>(critical[ni])});
    }
    return result;
}

} // namespace ditile::sim
