/**
 * @file
 * Baseline accelerator implementations.
 */

#include "sim/baselines.hh"

#include "common/logging.hh"
#include "sim/engine.hh"
#include "sim/execution_plan.hh"
#include "tiling/optimizer.hh"

namespace ditile::sim {

namespace {

/** Resident per-vertex dims: input + every intermediate + LSTM state. */
int
residentDims(const graph::DynamicGraph &dg,
             const model::DgnnConfig &model_config)
{
    int dims = dg.featureDim();
    for (int d : model_config.gcnDims)
        dims += d;
    dims += 2 * model_config.lstmHidden;
    return dims;
}

tiling::HardwareFeatures
tilingHardware(const AcceleratorConfig &hw)
{
    tiling::HardwareFeatures thw;
    thw.totalTiles = hw.totalTiles();
    thw.distributedBufferBytes = hw.distBufferBytes;
    return thw;
}

/** Temporal-parallel snapshot->column spread used by the baselines. */
std::vector<int>
roundRobinColumns(SnapshotId num_snapshots, int cols)
{
    std::vector<int> out(static_cast<std::size_t>(num_snapshots));
    for (SnapshotId t = 0; t < num_snapshots; ++t)
        out[static_cast<std::size_t>(t)] = static_cast<int>(t % cols);
    return out;
}

/**
 * Fit-only tiling of the baselines: partition to fit the buffer but
 * without the Eq. 6 access-minimizing subgraph formation, so subgraphs
 * fragment roughly twice as much as the optimized tiling and respect
 * no locality.
 */
tiling::TilingResult
baselineTiling(const graph::DynamicGraph &dg,
               const model::DgnnConfig &model_config,
               const AcceleratorConfig &hw)
{
    const auto app = tiling::ApplicationFeatures::fromGraph(
        dg, model_config.numGcnLayers(), residentDims(dg, model_config),
        model_config.bytesPerValue);
    auto tiled = tiling::optimizeTiling(app, tilingHardware(hw));
    tiled.tilingFactor *= 2;
    return tiled;
}

/**
 * Shared scaffolding for the three temporal-parallel baselines.
 */
class BaselineAccelerator : public Accelerator
{
  public:
    BaselineAccelerator(std::string name, AcceleratorConfig hw,
                        noc::TopologyKind topology,
                        EngineOptions options)
        : name_(std::move(name)), hw_(hw), options_(options)
    {
        hw_.noc.topology = topology;
    }

    std::string name() const override { return name_; }

    ExecutionPlan
    plan(const graph::DynamicGraph &dg,
         const model::DgnnConfig &model_config,
         PlanCache *cache = nullptr) override
    {
        const auto tiled = baselineTiling(dg, model_config, hw_);
        EngineOptions options = options_;
        options.accounting.crossFetchFraction =
            tiled.crossFetchFraction(1.0);

        MappingSpec mapping;
        mapping.rowPartition = graph::VertexPartition::contiguous(
            dg.numVertices(), hw_.tileRows);
        mapping.snapshotColumn = roundRobinColumns(dg.numSnapshots(),
                                                   hw_.tileCols);
        ExecutionPlan p = buildEnginePlan(dg, model_config, hw_,
                                          mapping, options, name_,
                                          cache);
        // Fit-only tiling provenance; Algorithm-1 parallelism stays at
        // the analytic defaults (the baselines don't co-optimize it).
        p.parallel.tiling = tiled;
        return p;
    }

  protected:
    std::string name_;
    AcceleratorConfig hw_;
    EngineOptions options_;
};

/**
 * MEGA uses the spatial-parallel mapping instead.
 */
class MegaAccelerator : public Accelerator
{
  public:
    explicit MegaAccelerator(AcceleratorConfig hw)
        : hw_(hw)
    {
        hw_.noc.topology = noc::TopologyKind::Mesh;
    }

    std::string name() const override { return "MEGA"; }

    ExecutionPlan
    plan(const graph::DynamicGraph &dg,
         const model::DgnnConfig &model_config,
         PlanCache *cache = nullptr) override
    {
        const auto tiled = baselineTiling(dg, model_config, hw_);
        EngineOptions options;
        options.algo = model::AlgoKind::MegaAlg;
        options.accounting.crossFetchFraction =
            tiled.crossFetchFraction(1.0);
        // Whole-grid spatial partitioning duplicates boundary fetches
        // across the tiles sharing a gather.
        options.dramTrafficScale = 1.15;
        // Irregular whole-grid gathers traverse long mesh paths and
        // thrash the row buffers of the commodity DRAM interface.
        options.computeEnergyScale = 2.0;
        options.onChipEnergyScale = 2.0;
        options.offChipEnergyScale = 2.2;

        MappingSpec mapping;
        mapping.spatialOnly = true;
        mapping.tilePartition = graph::VertexPartition::contiguous(
            dg.numVertices(), hw_.totalTiles());
        ExecutionPlan p = buildEnginePlan(dg, model_config, hw_,
                                          mapping, options, name(),
                                          cache);
        p.parallel.tiling = tiled;
        return p;
    }

  private:
    AcceleratorConfig hw_;
};

} // namespace

double
baselineCrossFetchFraction(const graph::DynamicGraph &dg,
                           const model::DgnnConfig &model_config,
                           const AcceleratorConfig &hw)
{
    return baselineTiling(dg, model_config, hw)
        .crossFetchFraction(1.0);
}

std::unique_ptr<Accelerator>
makeReady(const AcceleratorConfig &hw)
{
    EngineOptions options;
    options.algo = model::AlgoKind::ReAlg;
    // Mesh PE array statically partitioned by the average workload
    // split between the kernels: both regions run concurrently.
    options.gnnMacFraction = 0.75;
    options.rnnMacFraction = 0.25;
    options.rnnSeparateResource = true;
    // ReRAM processing-in-memory: weights live in the crossbars and a
    // large share of the feature stream is consumed in-situ.
    options.dramTrafficScale = 0.72;
    // Analog MACs pay ADC/DAC conversion on every accumulate; evolving
    // graph data forces frequent ReRAM cell reprogramming, whose write
    // energy dwarfs DDR transfers.
    options.computeEnergyScale = 5.0;
    options.offChipEnergyScale = 3.0;
    return std::make_unique<BaselineAccelerator>(
        "ReaDy", hw, noc::TopologyKind::Mesh, options);
}

std::unique_ptr<Accelerator>
makeDgnnBooster(const AcceleratorConfig &hw)
{
    EngineOptions options;
    options.algo = model::AlgoKind::ReAlg;
    // Dual pipelines with per-batch dispatch: the RNN pipeline starts
    // only after the dispatched GNN batch globally synchronizes.
    options.gnnMacFraction = 0.6;
    options.rnnMacFraction = 0.4;
    options.rnnSeparateResource = true;
    options.globalGnnBarrier = true;
    // The dual pipelines share one streamed fetch of the graph batch.
    options.dramTrafficScale = 0.78;
    // FPGA fabric: LUT/routing overhead per operation and per on-chip
    // byte, plus board-level DRAM interfaces.
    options.computeEnergyScale = 12.0;
    options.onChipEnergyScale = 3.5;
    options.offChipEnergyScale = 1.5;
    return std::make_unique<BaselineAccelerator>(
        "DGNN-Booster", hw, noc::TopologyKind::Ring, options);
}

std::unique_ptr<Accelerator>
makeRace(const AcceleratorConfig &hw)
{
    EngineOptions options;
    options.algo = model::AlgoKind::RaceAlg;
    // Engine-based split: equal PE groups for the GNN and RNN engines
    // (the paper's original RACE configuration), joined by a crossbar.
    options.gnnMacFraction = 0.5;
    options.rnnMacFraction = 0.5;
    options.rnnSeparateResource = true;
    // Staging intermediate z-vectors between the two engines adds an
    // extra pass over the output stream.
    options.dramTrafficScale = 1.02;
    // The monolithic crossbar's O(N^2) wiring costs per transported
    // byte; engine-local SRAM macros are single-ported and larger.
    options.computeEnergyScale = 2.0;
    options.onChipEnergyScale = 6.0;
    options.offChipEnergyScale = 2.4;
    return std::make_unique<BaselineAccelerator>(
        "RACE", hw, noc::TopologyKind::Crossbar, options);
}

std::unique_ptr<Accelerator>
makeMega(const AcceleratorConfig &hw)
{
    return std::make_unique<MegaAccelerator>(hw);
}

} // namespace ditile::sim
