/**
 * @file
 * Ready-time-propagation scheduler implementation.
 */

#include "sim/scheduler.hh"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

#include "common/logging.hh"

namespace ditile::sim {

ScheduleResult
scheduleTaskGraph(const TaskGraph &graph)
{
    const std::size_t n = graph.nodes.size();
    ScheduleResult sched;
    sched.tasks.resize(n);
    sched.lanes.resize(graph.lanes.size());
    if (n == 0)
        return sched;

    std::vector<std::vector<int>> succ(n);
    std::vector<int> indeg(n, 0);
    for (const auto &[src, dst] : graph.edges) {
        succ[static_cast<std::size_t>(src)].push_back(dst);
        ++indeg[static_cast<std::size_t>(dst)];
    }

    // ready[i] = max finish over scheduled dependencies; critDep[i]
    // the dependency that set it (first writer wins on equal finish,
    // which is the smallest id since propagation is deterministic).
    std::vector<Cycle> ready(n, 0);
    std::vector<int> crit_dep(n, -1);
    std::vector<Cycle> lane_free(graph.lanes.size(), 0);
    std::vector<int> lane_prev(graph.lanes.size(), -1);

    using Entry = std::pair<Cycle, int>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap;
    for (std::size_t i = 0; i < n; ++i) {
        if (indeg[i] == 0)
            heap.emplace(0, static_cast<int>(i));
    }

    std::size_t scheduled = 0;
    while (!heap.empty()) {
        const auto [dep_ready, id] = heap.top();
        heap.pop();
        const auto ui = static_cast<std::size_t>(id);
        const TaskNode &node = graph.nodes[ui];
        const auto li = static_cast<std::size_t>(node.lane);
        const Cycle start = std::max(dep_ready, lane_free[li]);
        const Cycle finish = start + node.duration;
        ScheduledTask &st = sched.tasks[ui];
        st.start = start;
        st.finish = finish;
        if (start == 0) {
            st.critPred = -1;
        } else if (lane_free[li] > dep_ready && lane_prev[li] != -1) {
            st.critPred = lane_prev[li];
        } else {
            st.critPred = crit_dep[ui];
        }
        lane_free[li] = finish;
        lane_prev[li] = id;
        sched.lanes[li].tasks += 1;
        sched.lanes[li].busyCycles += node.duration;
        sched.makespan = std::max(sched.makespan, finish);
        ++scheduled;
        for (const int s : succ[ui]) {
            const auto si = static_cast<std::size_t>(s);
            if (finish > ready[si]) {
                ready[si] = finish;
                crit_dep[si] = id;
            }
            if (--indeg[si] == 0)
                heap.emplace(ready[si], s);
        }
    }
    DITILE_ASSERT(scheduled == n, "task graph has a dependency cycle");

    // Critical path: backtrack from the last-finishing task (smallest
    // id on ties, so the walk is canonical).
    int end = -1;
    for (std::size_t i = 0; i < n; ++i) {
        if (end == -1 || sched.tasks[i].finish >
                sched.tasks[static_cast<std::size_t>(end)].finish)
            end = static_cast<int>(i);
    }
    for (int cur = end; cur != -1;
         cur = sched.tasks[static_cast<std::size_t>(cur)].critPred)
        sched.criticalPath.push_back(cur);
    std::reverse(sched.criticalPath.begin(), sched.criticalPath.end());
    return sched;
}

} // namespace ditile::sim
