/**
 * @file
 * PlanCache implementation.
 */

#include "sim/plan_cache.hh"

#include <cstdio>

#include "common/trace.hh"
#include "tiling/comm_model.hh"
#include "workload/digest.hh"

namespace ditile::sim {

namespace {

/** Emit a cache hit/miss instant on the caller's cache track. */
void
cacheInstant(const char *name, std::uint64_t key)
{
    Tracer &tracer = Tracer::global();
    if (!tracer.traceEnabled())
        return;
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(key));
    TraceEvent ev;
    ev.addArg("key", std::string(hex));
    tracer.instant("cache", name,
                   Tracer::trackBase() + Tracer::kCacheTrack,
                   std::move(ev));
}

} // namespace

namespace {

/** FNV-1a accumulation over 64-bit words. */
struct ContentHasher
{
    std::uint64_t h = 1469598103934665603ull;

    void
    mix(std::uint64_t v)
    {
        h = (h ^ v) * 1099511628211ull;
    }
};

} // namespace

std::shared_ptr<const PlanCache::SnapshotPlans>
PlanCache::buildSnapshotPlans(const graph::DynamicGraph &dg,
                              const model::DgnnConfig &config,
                              model::AlgoKind algo)
{
    model::IncrementalPlanner planner(dg, config, algo);
    auto plans = std::make_shared<SnapshotPlans>();
    plans->reserve(static_cast<std::size_t>(dg.numSnapshots()));
    for (SnapshotId t = 0; t < dg.numSnapshots(); ++t)
        plans->push_back(planner.plan(t));
    return plans;
}

std::uint64_t
PlanCache::planKey(const graph::DynamicGraph &dg,
                   const model::DgnnConfig &config, model::AlgoKind algo)
{
    ContentHasher hasher;
    hasher.mix(static_cast<std::uint64_t>(algo));
    hasher.mix(static_cast<std::uint64_t>(config.lstmHidden));
    hasher.mix(static_cast<std::uint64_t>(config.bytesPerValue));
    hasher.mix(static_cast<std::uint64_t>(config.aggregator));
    hasher.mix(static_cast<std::uint64_t>(config.rnn));
    hasher.mix(static_cast<std::uint64_t>(config.precision));
    for (int d : config.gcnDims)
        hasher.mix(static_cast<std::uint64_t>(d));
    // Structure walk shared with the workload-digest keys so both
    // caches agree on what "the same graph" means.
    hasher.mix(graph::structureHash(dg));
    return hasher.h;
}

std::shared_ptr<const PlanCache::SnapshotPlans>
PlanCache::obtain(const graph::DynamicGraph &dg,
                  const model::DgnnConfig &config, model::AlgoKind algo)
{
    const std::uint64_t key = planKey(dg, config, algo);
    std::shared_ptr<const SnapshotPlans> cached;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            cached = it->second;
        }
    }
    // Observability events fire outside the critical section; lookups
    // happen at serial points of a run, so traces stay deterministic.
    if (cached) {
        cacheInstant("plan-cache hit", key);
        Tracer::global().addMetric("cache.plan.hits", 1);
        return cached;
    }
    cacheInstant("plan-cache miss", key);
    Tracer::global().addMetric("cache.plan.misses", 1);
    // Plan outside the lock so concurrent misses on different keys
    // proceed in parallel.
    auto plans = buildSnapshotPlans(dg, config, algo);
    std::lock_guard<std::mutex> lock(mutex_);
    ++misses_;
    const auto [it, inserted] = entries_.emplace(key, std::move(plans));
    return it->second;
}

bool
PlanCache::contains(std::uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.find(key) != entries_.end();
}

void
PlanCache::setCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
}

std::size_t
PlanCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

void
PlanCache::touch(std::uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    recency_[key] = ++touchSeq_;
}

std::vector<std::uint64_t>
PlanCache::evictToCapacity()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::uint64_t> evicted;
    if (capacity_ == 0)
        return evicted;
    while (entries_.size() > capacity_) {
        // Least-recently-touched; untouched entries carry recency 0
        // and go first, with ascending key as the deterministic
        // tie-break (hash-map order never leaks into the choice).
        std::uint64_t victim = 0;
        std::uint64_t victim_recency = ~0ull;
        bool have = false;
        for (const auto &[key, plans] : entries_) {
            const auto it = recency_.find(key);
            const std::uint64_t r =
                it == recency_.end() ? 0 : it->second;
            if (!have || r < victim_recency ||
                (r == victim_recency && key < victim)) {
                victim = key;
                victim_recency = r;
                have = true;
            }
        }
        entries_.erase(victim);
        recency_.erase(victim);
        evicted.push_back(victim);
        ++evictions_;
        Tracer::global().addMetric("cache.plan.evictions", 1);
    }
    return evicted;
}

std::uint64_t
PlanCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
PlanCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::uint64_t
PlanCache::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evictions_;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    recency_.clear();
    touchSeq_ = 0;
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

void
printCacheStats(std::FILE *out, const PlanCache &plan_cache)
{
    const auto &digests = workload::DigestCache::global();
    const auto &comm = tiling::CommModelCache::global();
    std::fprintf(out, "cache stats (consolidated):\n");
    std::fprintf(
        out, "  plan cache: %llu hits, %llu misses, %zu entries\n",
        static_cast<unsigned long long>(plan_cache.hits()),
        static_cast<unsigned long long>(plan_cache.misses()),
        plan_cache.size());
    std::fprintf(
        out,
        "  workload digest cache: %llu hits, %llu misses, "
        "%zu entries (digests %s)\n",
        static_cast<unsigned long long>(digests.hits()),
        static_cast<unsigned long long>(digests.misses()),
        digests.size(),
        workload::digestEnabled() ? "enabled" : "disabled");
    std::fprintf(
        out, "  comm model memo: %llu hits, %llu misses, %zu points\n",
        static_cast<unsigned long long>(comm.hits()),
        static_cast<unsigned long long>(comm.misses()), comm.size());
}

} // namespace ditile::sim
