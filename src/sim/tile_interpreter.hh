/**
 * @file
 * Cycle-accurate interpreter for tile programs.
 *
 * Models the Figure-5(c) controller: instructions issue in order from
 * the instruction queue (one per cycle) to their functional unit —
 * the distributed-buffer port (LoadWeights/GatherLoad/StoreOutput),
 * the reuse-FIFO port (ReadFifo), the MAC array (Mac), the PPU
 * (Activate), and the router interface (SendMsg). Units are pipelined
 * and run concurrently; an instruction occupies its unit for a
 * duration set by the unit's bandwidth/throughput; Barrier drains
 * everything. The makespan is the drain time of the last unit.
 */

#ifndef DITILE_SIM_TILE_INTERPRETER_HH
#define DITILE_SIM_TILE_INTERPRETER_HH

#include "common/stats.hh"
#include "sim/isa.hh"
#include "sim/tile_model.hh"

namespace ditile::sim {

/**
 * Execution record for one tile program.
 */
struct InterpreterResult
{
    Cycle cycles = 0;               ///< Program makespan.
    std::uint64_t instructions = 0; ///< Instructions retired.
    Cycle macBusyCycles = 0;
    Cycle bufferBusyCycles = 0;     ///< Distributed-buffer port.
    Cycle fifoBusyCycles = 0;
    Cycle ppuBusyCycles = 0;
    Cycle routerBusyCycles = 0;
    ByteCount bufferBytes = 0;
    ByteCount fifoBytes = 0;
    ByteCount sentBytes = 0;
    double macUtilization = 0.0;

    /** Export into a StatSet. */
    StatSet toStats() const;
};

/**
 * Executes TilePrograms on one tile's microarchitecture.
 */
class TileInterpreter
{
  public:
    explicit TileInterpreter(const TileConfig &config = {});

    InterpreterResult execute(const TileProgram &program) const;

    const TileConfig &config() const { return config_; }

  private:
    TileConfig config_;
};

} // namespace ditile::sim

#endif // DITILE_SIM_TILE_INTERPRETER_HH
