/**
 * @file
 * Tile microarchitecture model implementation.
 */

#include "sim/tile_model.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace ditile::sim {

TileModel::TileModel(const TileConfig &config)
    : config_(config)
{
    DITILE_ASSERT(config_.pes > 0 && config_.macsPerPe > 0);
    DITILE_ASSERT(config_.refillBytesPerCycle > 0);
    DITILE_ASSERT(config_.ppuOpsPerCycle > 0);
}

TileResult
TileModel::executePhase(std::vector<VertexTask> tasks) const
{
    TileResult result;
    if (tasks.empty())
        return result;

    // LPT list scheduling: longest task first onto the earliest-free
    // PE (classic 4/3-approximation of the optimal makespan).
    std::stable_sort(tasks.begin(), tasks.end(),
        [](const VertexTask &a, const VertexTask &b) {
            return a.macs > b.macs;
        });

    // Min-heap of PE-free times.
    std::priority_queue<Cycle, std::vector<Cycle>,
                        std::greater<Cycle>> pe_free;
    for (int p = 0; p < config_.pes; ++p)
        pe_free.push(0);

    OpCount post_total = 0;
    for (const VertexTask &task : tasks) {
        const Cycle start = pe_free.top();
        pe_free.pop();

        // Compute time on the PE's MAC array.
        const Cycle compute = ceilDiv<Cycle>(
            static_cast<Cycle>(task.macs),
            static_cast<Cycle>(config_.macsPerPe));

        // Input staging: reuse-FIFO hits bypass the distributed
        // buffer; local-buffer overflows stall the PE while the
        // excess streams in at the refill bandwidth.
        Cycle stall = 0;
        if (task.reuseHit) {
            result.reuseFifoTraffic += task.inputBytes;
        } else {
            result.distBufferTraffic += task.inputBytes;
            if (task.inputBytes > config_.localBufferBytes) {
                const ByteCount overflow =
                    task.inputBytes - config_.localBufferBytes;
                stall = ceilDiv<Cycle>(
                    static_cast<Cycle>(overflow),
                    static_cast<Cycle>(config_.refillBytesPerCycle));
            }
        }
        result.localBufferTraffic += task.inputBytes;

        const Cycle busy = config_.dispatchCycles + stall + compute;
        result.macBusyCycles += compute;
        result.stallCycles += stall;
        post_total += task.postOps;
        pe_free.push(start + busy);
    }

    Cycle makespan = 0;
    while (!pe_free.empty()) {
        makespan = std::max(makespan, pe_free.top());
        pe_free.pop();
    }

    // The PPU array drains post-ops concurrently; it extends the
    // phase only when it is the slower pipe.
    result.ppuCycles = ceilDiv<Cycle>(
        static_cast<Cycle>(post_total),
        static_cast<Cycle>(config_.ppuOpsPerCycle) *
            static_cast<Cycle>(config_.pes));
    result.cycles = std::max(makespan, result.ppuCycles);

    const double capacity = static_cast<double>(result.cycles) *
        static_cast<double>(config_.pes);
    result.macUtilization = capacity > 0.0
        ? static_cast<double>(result.macBusyCycles) / capacity : 0.0;
    return result;
}

TileResult
TileModel::executeUniformPhase(std::size_t num_tasks,
                               OpCount macs_per_task,
                               OpCount post_ops_per_task,
                               ByteCount input_bytes_per_task) const
{
    std::vector<VertexTask> tasks(num_tasks);
    for (std::size_t i = 0; i < num_tasks; ++i) {
        tasks[i].vertex = static_cast<VertexId>(i);
        tasks[i].macs = macs_per_task;
        tasks[i].postOps = post_ops_per_task;
        tasks[i].inputBytes = input_bytes_per_task;
    }
    return executePhase(std::move(tasks));
}

} // namespace ditile::sim
