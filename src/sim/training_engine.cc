/**
 * @file
 * Training-iteration simulation implementation.
 */

#include "sim/training_engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "noc/network.hh"

namespace ditile::sim {

namespace {

/** Total learned parameter count of the model. */
OpCount
parameterCount(const graph::DynamicGraph &dg,
               const model::DgnnConfig &config)
{
    OpCount values = 0;
    int in_dim = dg.featureDim();
    for (int l = 0; l < config.numGcnLayers(); ++l) {
        values += static_cast<OpCount>(in_dim) *
            static_cast<OpCount>(
                config.gcnDims[static_cast<std::size_t>(l)]);
        in_dim = config.gcnDims[static_cast<std::size_t>(l)];
    }
    const auto z = static_cast<OpCount>(config.gnnOutputDim());
    const auto h = static_cast<OpCount>(config.lstmHidden);
    const OpCount pairs = config.rnn == model::RnnKind::Lstm ? 4 : 3;
    values += pairs * z * h + pairs * h * h;
    return values;
}

/** Makespan of one ring-neighbor all-reduce step over active tiles. */
Cycle
allReduceStepCycles(const AcceleratorConfig &hw, ByteCount chunk_bytes)
{
    std::vector<noc::Message> msgs;
    const int tiles = hw.totalTiles();
    for (int t = 0; t < tiles; ++t) {
        noc::Message m;
        m.src = static_cast<TileId>(t);
        m.dst = static_cast<TileId>((t + 1) % tiles);
        m.bytes = chunk_bytes;
        m.cls = noc::TrafficClass::Temporal; // regular ring pattern.
        msgs.push_back(m);
    }
    return noc::simulateTraffic(hw.noc, std::move(msgs)).makespan;
}

} // namespace

TrainingResult
runTrainingIteration(const graph::DynamicGraph &dg,
                     const model::DgnnConfig &model_config,
                     const AcceleratorConfig &hw,
                     const MappingSpec &mapping,
                     const EngineOptions &options,
                     const std::string &accelerator_name)
{
    TrainingResult result;
    result.forward = runEngine(dg, model_config, hw, mapping, options,
                               accelerator_name);
    result.ops = model::countTrainingOps(dg, model_config,
                                         options.algo);

    // Backward sweep: twice the forward products on the same mapping,
    // transposed gathers along the same links.
    result.backwardComputeCycles = 2 * result.forward.computeCycles;
    result.backwardCommCycles = result.forward.onChipCommCycles;

    // Ring all-reduce of the weight gradients: 2(N-1) steps moving
    // params/N values each.
    const OpCount params = parameterCount(dg, model_config);
    const auto tiles = static_cast<OpCount>(hw.totalTiles());
    const ByteCount chunk = static_cast<ByteCount>(ceilDiv<OpCount>(
        params, tiles)) *
        static_cast<ByteCount>(model_config.bytesPerValue);
    if (tiles > 1) {
        const Cycle step = allReduceStepCycles(hw, chunk);
        result.allReduceCycles = step * 2 * (tiles - 1);
    }

    // Optimizer: one multiply-add per parameter across the MAC pool.
    result.weightUpdateCycles = ceilDiv<Cycle>(
        static_cast<Cycle>(params),
        static_cast<Cycle>(hw.totalMacs()));

    // Backward overlaps its communication with compute exactly like
    // the forward pass; the all-reduce and update serialize at the
    // end of the iteration.
    const Cycle backward = std::max(result.backwardComputeCycles,
                                    result.backwardCommCycles);
    result.iterationCycles = result.forward.totalCycles + backward +
        result.allReduceCycles + result.weightUpdateCycles;

    // Energy: forward events plus the backward/update activity.
    energy::EnergyEvents events = result.forward.energyEvents;
    events.macs += result.ops.backward.totalMacs() +
        result.ops.weightUpdateOps / 2;
    events.aluOps += result.ops.backward.elementwiseOps;
    events.activations += result.ops.backward.activationOps;
    // Transposed gathers re-cross the same links; gradient
    // checkpoint traffic re-reads activations from DRAM.
    events.nocLinkBytes += result.forward.energyEvents.nocLinkBytes;
    events.nocRouterBytes +=
        result.forward.energyEvents.nocRouterBytes;
    events.dramBytes += result.forward.energyEvents.dramBytes / 2;
    // All-reduce payload: every step moves one chunk per tile.
    if (tiles > 1) {
        events.nocLinkBytes += chunk * tiles * 2 * (tiles - 1);
    }
    result.energy = energy::computeEnergy(events, hw.energyTable);
    result.energy.computePj *= options.computeEnergyScale;
    result.energy.onChipCommPj *= options.onChipEnergyScale;
    result.energy.offChipCommPj *= options.offChipEnergyScale;
    return result;
}

} // namespace ditile::sim
