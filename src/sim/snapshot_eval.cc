/**
 * @file
 * Stage-1 per-snapshot evaluation (extracted from engine.cc).
 *
 * Pure function of the EvalContext and the snapshot index: accounting,
 * off-chip request synthesis, compute distribution over tiles, and the
 * NoC replays. Runs under parallelFor; everything it writes lands in
 * the snapshot's own SnapshotWork slot, so the schedule is invisible
 * and results are bit-identical at any thread width.
 *
 * Hot-loop temporaries (per-slot MAC accumulators, the dense traffic
 * matrices, the changed-vertex bitmap) live in a thread-local arena
 * reused across snapshots and runs: the previous per-iteration
 * allocate/zero churn was the dominant stage-1 overhead on small
 * snapshots (ROADMAP item 5).
 */

#include "sim/engine_internal.hh"

#include "common/thread_pool.hh"
#include "sim/execution_plan.hh"
#include "sim/fault_model.hh"
#include "sim/tile_model.hh"
#include "workload/digest.hh"

namespace ditile::sim::detail {

namespace {

/** Per-worker scratch reused across snapshots (and across runs). */
struct EvalScratch
{
    std::vector<OpCount> slotGnn;
    std::vector<OpCount> slotRnn;
    DenseTraffic spatial{0};
    DenseTraffic boundary{0};
    DenseTraffic reuse{0};
    std::vector<bool> changed;
    std::vector<std::uint64_t> changedCnt;
};

EvalScratch &
scratch()
{
    thread_local EvalScratch s;
    return s;
}

} // namespace

void
evaluateSnapshot(const EvalContext &ctx, std::size_t i, SnapshotWork &w)
{
    const graph::DynamicGraph &dg = ctx.dg;
    const model::DgnnConfig &model_config = ctx.plan.modelConfig;
    const MappingSpec &mapping = ctx.plan.mapping;
    const EngineOptions &options = ctx.plan.options;
    const AcceleratorConfig &hw = ctx.plan.hw;
    const FaultModel *fm = ctx.faultModel;
    const workload::PartitionDigest *pdigest = ctx.pdigest;
    const int compute_slots = ctx.computeSlots;
    const VertexId num_vertices = dg.numVertices();
    const int feature_dim = dg.featureDim();
    const ByteCount bpv = ctx.bpv;
    const ByteCount z_bytes = ctx.zBytes;
    const ByteCount h_bytes = ctx.hBytes;

    const auto t = static_cast<SnapshotId>(i);
    const graph::Csr &g = dg.snapshot(t);
    const model::SnapshotPlan &splan = ctx.snapshotPlans[i];
    EvalScratch &s = scratch();

    // ---- Accounting (ops + off-chip bytes). ----
    w.ops = model::countSnapshotOps(dg, t, model_config, splan);
    w.dramTraffic = model::countSnapshotDram(
        dg, t, model_config, options.algo, splan, options.accounting);

    // ---- Off-chip request synthesis. ----
    // Full recomputation streams regions sequentially (row-buffer
    // friendly); incremental snapshots gather scattered subsets,
    // so their reads are split into pseudo-randomly placed chunks
    // that exercise row misses and bank conflicts. Issue cycles
    // stay 0 here; the serial replay stage stamps the cursor.
    auto scaled = [&](ByteCount bytes) {
        return static_cast<ByteCount>(
            static_cast<double>(bytes) * options.dramTrafficScale);
    };
    auto push_read = [&](std::uint64_t base, ByteCount region_bytes,
                         ByteCount bytes) {
        bytes = scaled(bytes);
        if (bytes == 0)
            return;
        if (splan.fullRecompute || bytes >= region_bytes) {
            w.requests.push_back({base, bytes, false, 0});
            return;
        }
        const auto chunks = static_cast<ByteCount>(clamp<ByteCount>(
            bytes / 1024, 1, 4096));
        const ByteCount chunk = bytes / chunks;
        w.requests.reserve(w.requests.size() +
                           static_cast<std::size_t>(chunks));
        for (ByteCount k = 0; k < chunks; ++k) {
            const std::uint64_t span =
                region_bytes > chunk ? region_bytes - chunk : 1;
            const std::uint64_t offset = mix64(
                (static_cast<std::uint64_t>(t) << 32) ^ k ^ base)
                % span;
            const ByteCount size = k + 1 == chunks
                ? bytes - chunk * (chunks - 1) : chunk;
            w.requests.push_back({base + offset, size, false, 0});
        }
    };
    const ByteCount intermediate_region =
        static_cast<ByteCount>(num_vertices) * z_bytes * 4;
    w.requests.reserve(8);
    w.requests.push_back({ctx.weightBase,
                          scaled(w.dramTraffic.weightBytes), false,
                          0});
    w.requests.push_back({ctx.adjacencyBase,
                          scaled(w.dramTraffic.adjacencyBytes),
                          false, 0});
    push_read(ctx.featureBase, ctx.featureBytesTotal,
              w.dramTraffic.inputFeatureBytes);
    if (w.dramTraffic.intermediateBytes > 0) {
        w.requests.push_back({ctx.intermediateBase,
                              scaled(w.dramTraffic.intermediateBytes
                                     / 2), true, 0});
        push_read(ctx.intermediateBase, intermediate_region,
                  w.dramTraffic.intermediateBytes -
                      w.dramTraffic.intermediateBytes / 2);
    }
    if (w.dramTraffic.outputBytes > 0) {
        const ByteCount writes =
            w.dramTraffic.outputBytes * 3 / 5; // z + new h/c.
        w.requests.push_back({ctx.outputBase, scaled(writes), true,
                              0});
        w.requests.push_back({ctx.outputBase,
                              scaled(w.dramTraffic.outputBytes -
                                     writes), false, 0});
    }

    // ---- Compute distribution over tiles. ----
    // Under tile faults the pre-computed degraded-mode re-deal
    // replaces the planned assignment for this snapshot.
    const int *ovec = ctx.ownerRemap[i].empty()
        ? ctx.baseOwner.data()
        : ctx.ownerRemap[i].data();
    const noc::NocFaults *noc_faults =
        fm && fm->at(t).anyNoc() ? &fm->at(t).noc : nullptr;
    s.slotGnn.assign(static_cast<std::size_t>(compute_slots), 0);
    s.slotRnn.assign(static_cast<std::size_t>(compute_slots), 0);
    std::vector<OpCount> &slot_gnn = s.slotGnn;
    std::vector<OpCount> &slot_rnn = s.slotRnn;
    // Detailed timing collects explicit per-slot vertex tasks (moved
    // into the tile model, so they stay per-call allocations).
    std::vector<std::vector<VertexTask>> slot_tasks;
    if (options.detailedTileTiming)
        slot_tasks.resize(static_cast<std::size_t>(compute_slots));

    s.spatial.reset(compute_slots);
    DenseTraffic &spatial_traffic = s.spatial;
    const int col = mapping.spatialOnly
        ? 0 : mapping.snapshotColumn[i];
    auto tile_of_slot = [&](int slot) {
        return mapping.spatialOnly
            ? static_cast<TileId>(slot)
            : static_cast<TileId>(slot * hw.tileCols + col);
    };

    // Digest fast paths cover snapshots that run on the planned
    // assignment; a degraded re-deal falls back to the loops.
    const bool digest_snapshot = pdigest && ctx.ownerRemap[i].empty();
    const bool rnn_all =
        static_cast<VertexId>(splan.rnnVertices.size()) ==
        num_vertices;

    if (digest_snapshot && splan.fullRecompute &&
        !options.detailedTileTiming) {
        // Full recomputation touches every vertex in every layer,
        // so the per-slot MAC totals and the cross-owner gather
        // bytes collapse to closed forms over the digest counters.
        // All integer arithmetic: bit-identical to the loops. The
        // digest rows are contiguous SoA planes, so both passes are
        // unit-stride.
        const auto deg_sum = pdigest->slotDegreeSum(t);
        const auto cnt = pdigest->slotVertexCount();
        const auto cross = pdigest->crossRow(t);
        const ByteCount gather_sum =
            static_cast<ByteCount>(ctx.sumInDims) * bpv;
        for (int sl = 0; sl < compute_slots; ++sl) {
            const auto si = static_cast<std::size_t>(sl);
            slot_gnn[si] = ctx.sumInDims * (deg_sum[si] + cnt[si]) +
                ctx.sumInOutDims * cnt[si];
        }
        for (int sl = 0; sl < compute_slots; ++sl) {
            const std::uint64_t *row = cross.data() +
                static_cast<std::size_t>(sl) *
                    static_cast<std::size_t>(compute_slots);
            for (int d = 0; d < compute_slots; ++d) {
                if (row[d] != 0) {
                    spatial_traffic.add(
                        sl, d, static_cast<ByteCount>(row[d]) *
                            gather_sum);
                }
            }
        }
    } else {
        // Flat CSR iteration: one row-pointer lookup per vertex, the
        // neighbor walk a contiguous scan of the adjacency array.
        // Every (ou, ov) pair accumulates branch-free — diagonal
        // included — and the meaningless same-slot cells are dropped
        // in one clearDiagonal() pass after the loops.
        const EdgeId *row_ptr = g.rowPtr().data();
        const VertexId *adj = g.adjacency().data();
        for (int l = 0; l < model_config.numGcnLayers(); ++l) {
            const auto &lw = splan.gcn[static_cast<std::size_t>(l)];
            const auto in_dim = static_cast<OpCount>(
                model_config.gcnInputDim(l, feature_dim));
            const auto out_dim =
                static_cast<OpCount>(model_config.gcnOutputDim(l));
            const ByteCount gather_bytes =
                static_cast<ByteCount>(in_dim) * bpv;
            for (VertexId v : lw.vertices) {
                const int ov = ovec[static_cast<std::size_t>(v)];
                const EdgeId row_begin = row_ptr[v];
                const EdgeId row_end = row_ptr[v + 1];
                const auto degree =
                    static_cast<OpCount>(row_end - row_begin);
                const OpCount vertex_macs =
                    (degree + 1) * in_dim + in_dim * out_dim;
                slot_gnn[static_cast<std::size_t>(ov)] +=
                    vertex_macs;
                if (options.detailedTileTiming) {
                    VertexTask task;
                    task.vertex = v;
                    task.macs = vertex_macs;
                    task.postOps = out_dim;
                    task.inputBytes =
                        (static_cast<ByteCount>(degree) + 1) *
                        static_cast<ByteCount>(in_dim) * bpv;
                    slot_tasks[static_cast<std::size_t>(ov)]
                        .push_back(task);
                }
                for (EdgeId e = row_begin; e < row_end; ++e) {
                    const int ou = ovec[static_cast<std::size_t>(
                        adj[e])];
                    spatial_traffic.add(ou, ov, gather_bytes);
                }
            }
        }
        spatial_traffic.clearDiagonal();
    }
    if (digest_snapshot && rnn_all) {
        const auto cnt = pdigest->slotVertexCount();
        for (int sl = 0; sl < compute_slots; ++sl) {
            const auto si = static_cast<std::size_t>(sl);
            slot_rnn[si] = ctx.rnnVertexMacs * cnt[si];
        }
    } else {
        for (VertexId v : splan.rnnVertices) {
            slot_rnn[static_cast<std::size_t>(
                ovec[static_cast<std::size_t>(v)])] +=
                ctx.rnnVertexMacs;
        }
    }

    OpCount gnn_crit_macs = 0;
    OpCount rnn_crit_macs = 0;
    for (int sl = 0; sl < compute_slots; ++sl) {
        gnn_crit_macs = std::max(gnn_crit_macs,
            slot_gnn[static_cast<std::size_t>(sl)]);
        rnn_crit_macs = std::max(rnn_crit_macs,
            slot_rnn[static_cast<std::size_t>(sl)]);
    }
    if (options.detailedTileTiming) {
        // Critical slot via explicit PE-array scheduling. The
        // static MAC fraction scales the per-PE array width.
        // Independent per-tile sub-models: fan out over slots and
        // reduce into per-slot result vectors.
        TileConfig tconfig;
        tconfig.pes = hw.pesPerTile;
        tconfig.macsPerPe = std::max(1, static_cast<int>(
            hw.macsPerPe * options.gnnMacFraction));
        tconfig.localBufferBytes = hw.localBufferBytes;
        tconfig.reuseFifoBytes = hw.reuseFifoBytes;
        const TileModel tile(tconfig);
        const std::size_t slots = slot_tasks.size();
        std::vector<Cycle> slot_cycles(slots, 0);
        std::vector<ByteCount> slot_traffic(slots, 0);
        parallelFor(slots, [&](std::size_t sl) {
            if (slot_tasks[sl].empty())
                return;
            const auto phase =
                tile.executePhase(std::move(slot_tasks[sl]));
            slot_cycles[sl] = phase.cycles;
            slot_traffic[sl] = phase.localBufferTraffic;
        }, &ctx.pool);
        Cycle worst = 0;
        for (std::size_t sl = 0; sl < slots; ++sl) {
            worst = std::max(worst, slot_cycles[sl]);
            w.localBufferBytes += slot_traffic[sl];
        }
        w.gnnCompute = worst;
    } else {
        w.gnnCompute = computeCycles(
            gnn_crit_macs, ctx.tileMacs * options.gnnMacFraction);
    }
    w.rnnCompute = computeCycles(
        rnn_crit_macs, ctx.tileMacs * options.rnnMacFraction);

    // ---- NoC replay: GNN-phase spatial traffic. ----
    spatial_traffic.emit(w.spatialMsgs, noc::TrafficClass::Spatial,
                         0, tile_of_slot, tile_of_slot);
    if (ctx.adaptiveRelink) {
        // The Re-Link span depends on the controller's engaged
        // state, which chains across snapshots: record this
        // phase's vertical-distance profile and defer the replay
        // until the serial stage has decided the span.
        w.spatialDistances.reserve(w.spatialMsgs.size());
        for (const auto &m : w.spatialMsgs) {
            const int rs = m.src / hw.tileCols;
            const int rd = m.dst / hw.tileCols;
            const int fwd = (rd - rs + hw.tileRows) % hw.tileRows;
            w.spatialDistances.push_back(
                std::min(fwd, hw.tileRows - fwd));
        }
        w.spatialPending = true;
    } else {
        w.spatial = noc::simulateTraffic(hw.noc,
                                         std::move(w.spatialMsgs),
                                         noc_faults);
        w.spatialMsgs.clear();
    }

    // ---- RNN-boundary temporal + reuse traffic. ----
    if (!mapping.spatialOnly && t > 0) {
        const int prev_col = mapping.snapshotColumn[i - 1];
        if (prev_col != col) {
            // Boundary endpoints honor the degraded-mode re-deal
            // on *both* sides: the previous column's survivors may
            // differ from this column's.
            const int *prev_ovec = ctx.ownerRemap[i - 1].empty()
                ? ctx.baseOwner.data()
                : ctx.ownerRemap[i - 1].data();
            const bool boundary_digest =
                digest_snapshot && ctx.ownerRemap[i - 1].empty();
            auto src_tile = [&](int sl) {
                return static_cast<TileId>(sl * hw.tileCols +
                                           prev_col);
            };
            auto dst_tile = [&](int d) {
                return static_cast<TileId>(d * hw.tileCols + col);
            };
            s.boundary.reset(compute_slots);
            DenseTraffic &boundary = s.boundary;
            // Temporal: every RNN-active vertex needs its previous
            // hidden/cell state from the previous snapshot's column.
            if (boundary_digest && rnn_all) {
                // Both columns run the planned assignment, so every
                // vertex stays in its own row: the boundary is
                // purely diagonal with per-slot vertex counts.
                const auto cnt = pdigest->slotVertexCount();
                for (int sl = 0; sl < compute_slots; ++sl) {
                    boundary.add(
                        sl, sl,
                        2 * h_bytes *
                            static_cast<ByteCount>(
                                cnt[static_cast<std::size_t>(sl)]));
                }
            } else {
                for (VertexId v : splan.rnnVertices) {
                    boundary.add(
                        prev_ovec[static_cast<std::size_t>(v)],
                        ovec[static_cast<std::size_t>(v)],
                        2 * h_bytes);
                }
            }
            // Reuse: incremental algorithms forward the unchanged
            // vertices' outputs instead of recomputing them.
            std::vector<noc::Message> msgs;
            boundary.emit(msgs, noc::TrafficClass::Temporal, 0,
                          src_tile, dst_tile);
            if (!splan.fullRecompute) {
                s.reuse.reset(compute_slots);
                DenseTraffic &reuse = s.reuse;
                if (boundary_digest) {
                    // Same diagonal argument; the unchanged count
                    // per slot is the slot population minus its
                    // changed (last-layer) vertices.
                    s.changedCnt.assign(
                        static_cast<std::size_t>(compute_slots), 0);
                    std::vector<std::uint64_t> &changed_cnt =
                        s.changedCnt;
                    for (VertexId v : splan.gcn.back().vertices) {
                        ++changed_cnt[static_cast<std::size_t>(
                            ovec[static_cast<std::size_t>(v)])];
                    }
                    for (int sl = 0; sl < compute_slots; ++sl) {
                        const auto si =
                            static_cast<std::size_t>(sl);
                        const std::uint64_t unchanged =
                            pdigest->slotVertexCount()[si] -
                            changed_cnt[si];
                        if (unchanged == 0)
                            continue;
                        reuse.add(sl, sl,
                                  (z_bytes + h_bytes) *
                                      static_cast<ByteCount>(
                                          unchanged));
                        w.reuseTotal += (z_bytes + h_bytes) *
                            static_cast<ByteCount>(unchanged);
                    }
                } else {
                    s.changed.assign(
                        static_cast<std::size_t>(num_vertices),
                        false);
                    std::vector<bool> &changed = s.changed;
                    for (VertexId v : splan.gcn.back().vertices)
                        changed[static_cast<std::size_t>(v)] = true;
                    for (VertexId v = 0; v < num_vertices; ++v) {
                        if (changed[static_cast<std::size_t>(v)])
                            continue;
                        reuse.add(
                            prev_ovec[static_cast<std::size_t>(v)],
                            ovec[static_cast<std::size_t>(v)],
                            z_bytes + h_bytes);
                        w.reuseTotal += z_bytes + h_bytes;
                    }
                }
                reuse.emit(msgs, noc::TrafficClass::Reuse, 0,
                           src_tile, dst_tile);
            }
            w.temporal = noc::simulateTraffic(hw.noc,
                                              std::move(msgs),
                                              noc_faults);
            w.hasTemporal = true;
        }
    }
}

} // namespace ditile::sim::detail
