/**
 * @file
 * Tile instruction set (paper Figure 5 (c): instruction queue +
 * controller driving the PE array, buffers, reuse FIFO and router
 * interface).
 *
 * The engine's phase-level timing never materializes instructions;
 * this layer does, for two purposes: (1) it grounds the tile timing
 * model in an executable semantics that tests can cross-validate, and
 * (2) it gives microarchitecture studies a concrete artifact — the
 * per-tile program a real DiTile controller would dispatch.
 */

#ifndef DITILE_SIM_ISA_HH
#define DITILE_SIM_ISA_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "graph/csr.hh"
#include "model/dgnn_config.hh"

namespace ditile::sim {

/**
 * Tile-level operations. Operand semantics per opcode:
 *  - LoadWeights: bytes staged from the distributed buffer.
 *  - GatherLoad: bytes of neighbor features fetched to the PE.
 *  - ReadFifo:   bytes popped from the reuse FIFO.
 *  - Mac:        multiply-accumulate count.
 *  - Activate:   post-processing op count (PPU).
 *  - StoreOutput: bytes written back to the distributed buffer.
 *  - SendMsg:    bytes handed to the router interface.
 *  - Barrier:    operand unused; waits for every unit to drain.
 */
enum class Opcode : std::uint8_t
{
    LoadWeights,
    GatherLoad,
    ReadFifo,
    Mac,
    Activate,
    StoreOutput,
    SendMsg,
    Barrier,
};

/** Display mnemonic. */
const char *opcodeName(Opcode op);

/**
 * One tile instruction.
 */
struct Instruction
{
    Opcode op = Opcode::Barrier;
    std::uint64_t operand = 0;

    bool
    operator==(const Instruction &o) const
    {
        return op == o.op && operand == o.operand;
    }
};

/** A tile program: the controller dispatches these in order. */
using TileProgram = std::vector<Instruction>;

/** Human-readable disassembly (one instruction per line). */
std::string disassemble(const TileProgram &program);

/**
 * Generate the GNN-layer program for one tile's vertex worklist:
 * per layer, stage the weight tile once, then per vertex gather
 * (or pop reused inputs), run the aggregation+combination MACs,
 * activate, and store; cross-partition destinations emit SendMsg.
 */
TileProgram buildGnnLayerProgram(
    const graph::Csr &g, const model::DgnnConfig &config,
    int layer, int feature_dim,
    const std::vector<VertexId> &vertices,
    const std::vector<bool> &reuse_hit,
    ByteCount send_bytes_per_vertex);

/**
 * Generate the RNN-phase program: weights once, then per vertex the
 * recurrent matmuls, gate post-processing, and the state store.
 */
TileProgram buildRnnProgram(const model::DgnnConfig &config,
                            std::size_t num_vertices);

/** Aggregate operand totals per opcode (for accounting checks). */
std::vector<std::uint64_t> operandTotals(const TileProgram &program);

} // namespace ditile::sim

#endif // DITILE_SIM_ISA_HH
