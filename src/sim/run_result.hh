/**
 * @file
 * Outcome of one accelerator execution over a dynamic graph.
 */

#ifndef DITILE_SIM_RUN_RESULT_HH
#define DITILE_SIM_RUN_RESULT_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "energy/energy_model.hh"
#include "model/accounting.hh"

namespace ditile::sim {

/**
 * Per-snapshot timeline record: when each phase of snapshot t ran and
 * what it cost. Components overlap per the §7.1 timing model, so
 * phase durations do not sum to the end-to-end time.
 */
struct SnapshotTrace
{
    SnapshotId snapshot = 0;
    int column = 0;               ///< Tile column executing it.
    Cycle dramDone = 0;           ///< Off-chip stream completion.
    Cycle gnnComputeCycles = 0;   ///< Critical-tile GNN compute.
    Cycle rnnComputeCycles = 0;   ///< Critical-tile RNN compute.
    Cycle spatialCommCycles = 0;  ///< GNN-phase NoC makespan.
    Cycle temporalCommCycles = 0; ///< RNN-boundary NoC makespan.
    Cycle gnnDone = 0;            ///< GNN phase completion time.
    Cycle rnnDone = 0;            ///< RNN phase completion time.
};

/**
 * Everything the figure benches and tests read out of a run.
 */
struct RunResult
{
    std::string acceleratorName;
    std::string workloadName;

    Cycle totalCycles = 0;

    // Non-overlapped view of where time went (components may overlap,
    // so the sum can exceed totalCycles).
    Cycle computeCycles = 0;
    Cycle onChipCommCycles = 0;
    Cycle offChipCycles = 0;
    Cycle configCycles = 0;

    model::OpsBreakdown ops;
    model::DramBreakdown dramTraffic;
    energy::EnergyEvents energyEvents;
    energy::EnergyBreakdown energy;

    /** Busy-MAC fraction over the whole-chip makespan. */
    double peUtilization = 0.0;

    /** On-chip bytes actually moved between tiles. */
    ByteCount nocBytes = 0;
    ByteCount nocBytesTemporal = 0;
    ByteCount nocBytesSpatial = 0;
    ByteCount nocBytesReuse = 0;

    /** Detailed merged counters (NoC, DRAM, energy). */
    StatSet stats;

    /** Per-snapshot timeline, size == T. */
    std::vector<SnapshotTrace> trace;
};

} // namespace ditile::sim

#endif // DITILE_SIM_RUN_RESULT_HH
