/**
 * @file
 * Outcome of one accelerator execution over a dynamic graph.
 */

#ifndef DITILE_SIM_RUN_RESULT_HH
#define DITILE_SIM_RUN_RESULT_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "energy/energy_model.hh"
#include "model/accounting.hh"

namespace ditile::sim {

/**
 * Per-snapshot timeline record: when each phase of snapshot t ran and
 * what it cost. Components overlap per the §7.1 timing model, so
 * phase durations do not sum to the end-to-end time.
 */
struct SnapshotTrace
{
    SnapshotId snapshot = 0;
    int column = 0;               ///< Tile column executing it.
    Cycle dramDone = 0;           ///< Off-chip stream completion.
    Cycle gnnComputeCycles = 0;   ///< Critical-tile GNN compute.
    Cycle rnnComputeCycles = 0;   ///< Critical-tile RNN compute.
    Cycle spatialCommCycles = 0;  ///< GNN-phase NoC makespan.
    Cycle temporalCommCycles = 0; ///< RNN-boundary NoC makespan.
    Cycle gnnDone = 0;            ///< GNN phase completion time.
    Cycle rnnDone = 0;            ///< RNN phase completion time.
};

/**
 * One recovery action the engine performed in degraded mode.
 */
struct RecoveryEvent
{
    SnapshotId snapshot = 0;
    std::string kind;   ///< "tile-remap", "noc-reroute", "noc-retry",
                        ///< or "dram-retry".
    std::string detail; ///< Human-readable description.
};

/**
 * Fault-injection outcome: what was injected and how the run degraded.
 * All zero / disabled when the plan carries no fault schedule.
 */
struct ResilienceReport
{
    bool enabled = false;

    // Injected fault counts by category (distinct hardware elements).
    std::uint64_t injectedTileFaults = 0;
    std::uint64_t injectedLinkFaults = 0;
    std::uint64_t injectedBypassFaults = 0;
    std::uint64_t injectedDramFaults = 0;

    std::uint64_t degradedSnapshots = 0; ///< Snapshots with any
                                         ///< active fault state.
    std::uint64_t remappedVertices = 0;  ///< Vertex-snapshot pairs the
                                         ///< BDW re-deal moved.
    std::uint64_t reroutedMessages = 0;  ///< Non-minimal NoC paths.
    std::uint64_t retriedMessages = 0;   ///< Messages that paid retry
                                         ///< backoff.
    Cycle nocRetryBackoffCycles = 0;     ///< Total NoC backoff paid.
    std::uint64_t dramRetryRequests = 0; ///< Re-read DRAM requests.
    ByteCount dramRetryBytes = 0;        ///< Bytes re-streamed.
    Cycle dramRetryCycles = 0;           ///< Extra off-chip cycles.

    /** Mean fraction of compute slots offline across snapshots. */
    double degradedCapacityFraction = 0.0;

    /** Ordered recovery log (snapshot-major). */
    std::vector<RecoveryEvent> events;

    /** Export the counters into a StatSet ("resilience.*" keys). */
    StatSet
    toStats() const
    {
        StatSet s;
        s.set("resilience.tile_faults",
              static_cast<double>(injectedTileFaults));
        s.set("resilience.link_faults",
              static_cast<double>(injectedLinkFaults));
        s.set("resilience.bypass_faults",
              static_cast<double>(injectedBypassFaults));
        s.set("resilience.dram_faults",
              static_cast<double>(injectedDramFaults));
        s.set("resilience.degraded_snapshots",
              static_cast<double>(degradedSnapshots));
        s.set("resilience.remapped_vertices",
              static_cast<double>(remappedVertices));
        s.set("resilience.rerouted_messages",
              static_cast<double>(reroutedMessages));
        s.set("resilience.retried_messages",
              static_cast<double>(retriedMessages));
        s.set("resilience.noc_retry_backoff_cycles",
              static_cast<double>(nocRetryBackoffCycles));
        s.set("resilience.dram_retry_requests",
              static_cast<double>(dramRetryRequests));
        s.set("resilience.dram_retry_bytes",
              static_cast<double>(dramRetryBytes));
        s.set("resilience.dram_retry_cycles",
              static_cast<double>(dramRetryCycles));
        s.set("resilience.degraded_capacity_fraction",
              degradedCapacityFraction);
        return s;
    }
};

/**
 * Task-graph schedule summary (overlap mode only). Everything here is
 * derived from the deterministic scheduler, so it is bit-identical at
 * any thread width; `--task-stats` and `ditile_inspect plan --tasks`
 * render it.
 */
struct TaskGraphStats
{
    bool enabled = false;

    std::uint64_t numTasks = 0;
    std::uint64_t numEdges = 0;
    Cycle makespan = 0;

    /** Per-resource-lane occupancy. */
    struct Lane
    {
        std::string name;
        std::uint64_t tasks = 0;
        Cycle busyCycles = 0;
    };
    std::vector<Lane> lanes;

    /** Every scheduled task in canonical id order. */
    struct Task
    {
        int id = 0;
        std::string kind; ///< Canonical TaskKind token.
        SnapshotId snapshot = 0;
        std::string lane; ///< Lane name.
        Cycle start = 0;
        Cycle finish = 0;
        bool critical = false; ///< On the scheduler's critical path.
    };
    std::vector<Task> tasks;
};

/**
 * Everything the figure benches and tests read out of a run.
 */
struct RunResult
{
    std::string acceleratorName;
    std::string workloadName;

    Cycle totalCycles = 0;

    // Non-overlapped view of where time went (components may overlap,
    // so the sum can exceed totalCycles).
    Cycle computeCycles = 0;
    Cycle onChipCommCycles = 0;
    Cycle offChipCycles = 0;
    Cycle configCycles = 0;

    model::OpsBreakdown ops;
    model::DramBreakdown dramTraffic;
    energy::EnergyEvents energyEvents;
    energy::EnergyBreakdown energy;

    /** Busy-MAC fraction over the whole-chip makespan. */
    double peUtilization = 0.0;

    /** On-chip bytes actually moved between tiles. */
    ByteCount nocBytes = 0;
    ByteCount nocBytesTemporal = 0;
    ByteCount nocBytesSpatial = 0;
    ByteCount nocBytesReuse = 0;

    /** Detailed merged counters (NoC, DRAM, energy). */
    StatSet stats;

    /** Per-snapshot timeline, size == T. */
    std::vector<SnapshotTrace> trace;

    /** Fault-injection outcome (disabled on fault-free runs). */
    ResilienceReport resilience;

    /** Task-graph schedule summary (disabled on staged runs). */
    TaskGraphStats taskGraph;
};

} // namespace ditile::sim

#endif // DITILE_SIM_RUN_RESULT_HH
