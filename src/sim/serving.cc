/**
 * @file
 * ConcurrentRunner implementation.
 */

#include "sim/serving.hh"

#include <mutex>

#include "common/logging.hh"

namespace ditile::sim {

namespace {

// The cache key depends on the accelerator family's update algorithm,
// which is only observable from a built plan. Latch it on first use;
// until then the cache is empty and planned() is trivially false.
std::mutex g_algo_mutex;

} // namespace

ConcurrentRunner::ConcurrentRunner(AcceleratorFactory factory)
    : factory_(std::move(factory)), algo_(model::AlgoKind::DiTileAlg)
{
    DITILE_ASSERT(factory_, "ConcurrentRunner needs a factory");
    algoKnown_ = false;
}

RunResult
ConcurrentRunner::infer(const graph::DynamicGraph &dg,
                        const model::DgnnConfig &config,
                        const FaultSpec &faults)
{
    auto accel = factory_();
    DITILE_ASSERT(accel, "accelerator factory returned null");
    auto plan = accel->plan(dg, config, &cache_);
    plan.options.overlap = overlap_;
    if (!faults.empty())
        plan.faults = faults;
    if (!algoKnown_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(g_algo_mutex);
        if (!algoKnown_.load(std::memory_order_relaxed)) {
            algo_ = plan.options.algo;
            algoKnown_.store(true, std::memory_order_release);
        }
    }
    return executePlan(dg, plan);
}

bool
ConcurrentRunner::planned(const graph::DynamicGraph &dg,
                          const model::DgnnConfig &config) const
{
    if (!algoKnown_.load(std::memory_order_acquire))
        return false;
    return cache_.contains(PlanCache::planKey(dg, config, algo_));
}

std::uint64_t
ConcurrentRunner::planKeyFor(const graph::DynamicGraph &dg,
                             const model::DgnnConfig &config) const
{
    if (!algoKnown_.load(std::memory_order_acquire))
        return 0;
    return PlanCache::planKey(dg, config, algo_);
}

int
ConcurrentRunner::algoIfKnown() const
{
    if (!algoKnown_.load(std::memory_order_acquire))
        return -1;
    return static_cast<int>(algo_);
}

void
ConcurrentRunner::latchAlgo(int algo)
{
    if (algo < 0)
        return;
    std::lock_guard<std::mutex> lock(g_algo_mutex);
    algo_ = static_cast<model::AlgoKind>(algo);
    algoKnown_.store(true, std::memory_order_release);
}

} // namespace ditile::sim
