/**
 * @file
 * Shared phase-level execution engine.
 *
 * All five accelerator models (DiTile-DGNN and the four baselines) are
 * instances of this engine with different mappings, algorithms,
 * topologies and resource policies, exactly mirroring the paper's
 * iso-resource comparison: identical multiplier counts, buffer
 * capacities and bandwidth, different architecture styles.
 *
 * The engine executes one snapshot at a time through three coupled
 * sub-models:
 *   1. the DRAM model streams the snapshot's off-chip traffic
 *      (overlapped with on-chip execution, paper §7.1),
 *   2. per-tile MAC counts give compute cycles (critical tile),
 *   3. the NoC model replays the generated spatial/temporal/reuse
 *      messages for on-chip communication time (overlapped with
 *      compute).
 * Temporal dependencies chain the RNN phases across snapshots; column
 * occupancy serializes snapshots mapped to the same tiles.
 */

#ifndef DITILE_SIM_ENGINE_HH
#define DITILE_SIM_ENGINE_HH

#include <vector>

#include "graph/dynamic_graph.hh"
#include "graph/partition.hh"
#include "model/dgnn_config.hh"
#include "model/incremental.hh"
#include "sim/accel_config.hh"
#include "sim/run_result.hh"

namespace ditile::sim {

/**
 * How work is placed onto the tile grid.
 */
struct MappingSpec
{
    /**
     * Vertex -> row partition (temporal/hybrid parallelism): the tile
     * executing vertex v of snapshot t is (rowPartition[v],
     * snapshotColumn[t]).
     */
    graph::VertexPartition rowPartition;

    /** Snapshot -> column assignment, size T. */
    std::vector<int> snapshotColumn;

    /**
     * Pure spatial parallelism (MEGA): vertices partitioned over the
     * whole grid, every tile processes every snapshot, snapshots run
     * sequentially, and no temporal communication leaves a tile.
     */
    bool spatialOnly = false;

    /** Vertex -> tile partition used when spatialOnly. */
    graph::VertexPartition tilePartition;
};

/**
 * Policy knobs distinguishing the accelerator styles.
 */
struct EngineOptions
{
    model::AlgoKind algo = model::AlgoKind::DiTileAlg;
    model::AccountingParams accounting;

    /**
     * Fraction of each tile's MAC array usable by the GNN / RNN
     * kernels. 1.0 means the whole (flexibly shared) array; static
     * kernel partitioning (ReaDy, RACE) uses fractions < 1.
     */
    double gnnMacFraction = 1.0;
    double rnnMacFraction = 1.0;

    /**
     * RNN runs on a dedicated engine (RACE): the RNN phase of snapshot
     * t does not block the tile column, so it pipelines with the GNN
     * phase of t+1.
     */
    bool rnnSeparateResource = false;

    /**
     * Global synchronization between the GNN phase of every snapshot
     * and the RNN chain (DGNN-Booster's per-batch dispatch).
     */
    bool globalGnnBarrier = false;

    /**
     * Reuse traffic between consecutive snapshots is forwarded through
     * the reuse FIFO path (DiTile); otherwise reused state re-streams
     * from the distributed buffers with spatial-class routing.
     */
    bool reuseFifoForwarding = false;

    /** Re-Link reconfigurations charged per snapshot (DiTile only). */
    std::uint64_t reconfigEventsPerSnapshot = 0;

    /**
     * Fraction of the algorithmic off-chip traffic that actually
     * crosses the memory bus. ReaDy's ReRAM processing-in-memory
     * absorbs a large share in-situ (< 1); MEGA's whole-grid spatial
     * partitioning duplicates boundary fetches (> 1). The Figure-8
     * accounting stays unscaled — this models the architecture, not
     * the algorithm.
     */
    double dramTrafficScale = 1.0;

    /**
     * Technology/implementation energy multipliers relative to the
     * baseline 45 nm ASIC table: analog ReRAM MACs pay ADC/DAC
     * conversion, FPGA fabric pays LUT overhead per op, crossbars and
     * long-haul meshes pay more per on-chip byte, ReRAM cell
     * reprogramming and board DRAM pay more per off-chip byte.
     */
    double computeEnergyScale = 1.0;
    double onChipEnergyScale = 1.0;
    double offChipEnergyScale = 1.0;

    /**
     * Time compute phases with the detailed tile microarchitecture
     * model (per-vertex list scheduling on the PE array, PPU drain,
     * local-buffer stalls) instead of the flat ops/MACs conversion.
     * Slower; intra-tile imbalance and dispatch overheads appear.
     */
    bool detailedTileTiming = false;

    /**
     * Let the Re-Link controller pick the vertical bypass span per
     * snapshot from the spatial traffic's distance profile instead of
     * using the static NocConfig::reLinkSpan (Reconfigurable topology
     * only). Controller switch toggles are charged as reconfiguration
     * events.
     */
    bool adaptiveRelink = false;

    /**
     * Execute through the event-driven task-graph scheduler instead of
     * the legacy staged barrier timeline: typed tasks (GNN/RNN
     * compute, spatial/temporal comm, DRAM streaming, Re-Link
     * reconfig) on per-device resource lanes, started as soon as their
     * data dependencies allow. Per-task durations are identical to the
     * staged model and the dependencies are a strict relaxation of the
     * barriers, so overlap never reports a longer makespan than staged
     * mode on fault-free runs. The staged timeline (the byte-identity
     * reference, `--no-overlap` in the CLIs) remains the default here
     * so existing plans and goldens are unaffected.
     */
    bool overlap = false;
};

/**
 * Execute one DGNN inference and return the full result record.
 */
RunResult runEngine(const graph::DynamicGraph &dg,
                    const model::DgnnConfig &model_config,
                    const AcceleratorConfig &hw,
                    const MappingSpec &mapping,
                    const EngineOptions &options,
                    const std::string &accelerator_name);

} // namespace ditile::sim

#endif // DITILE_SIM_ENGINE_HH
