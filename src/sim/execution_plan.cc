/**
 * @file
 * ExecutionPlan assembly, JSON (de)serialization and content hashing.
 *
 * The serialization is canonical: field order is fixed, doubles are
 * emitted with %.17g (strtod round-trips them bit-exactly), and
 * integer-valued doubles print as integers. Two plans are semantically
 * identical iff their serializations are byte-identical, which is what
 * contentHash() keys on and what `ditile_inspect plan --diff` checks.
 */

#include "sim/execution_plan.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/trace.hh"
#include "sim/plan_cache.hh"
#include "sim/task_graph.hh"
#include "workload/digest.hh"

namespace ditile::sim {

namespace {

// ---- Canonical enum spellings. ----

const char *
algoToken(model::AlgoKind kind)
{
    switch (kind) {
      case model::AlgoKind::ReAlg: return "re";
      case model::AlgoKind::RaceAlg: return "race";
      case model::AlgoKind::MegaAlg: return "mega";
      case model::AlgoKind::DiTileAlg: return "ditile";
    }
    return "ditile";
}

model::AlgoKind
algoFromToken(const std::string &token)
{
    if (token == "re")
        return model::AlgoKind::ReAlg;
    if (token == "race")
        return model::AlgoKind::RaceAlg;
    if (token == "mega")
        return model::AlgoKind::MegaAlg;
    if (token == "ditile")
        return model::AlgoKind::DiTileAlg;
    DITILE_THROW("unknown algo token '", token, "'");
}

const char *
aggregatorToken(model::GnnAggregator kind)
{
    switch (kind) {
      case model::GnnAggregator::GcnNormalized: return "gcn";
      case model::GnnAggregator::SageMean: return "sage";
      case model::GnnAggregator::GinSum: return "gin";
    }
    return "gcn";
}

model::GnnAggregator
aggregatorFromToken(const std::string &token)
{
    if (token == "gcn")
        return model::GnnAggregator::GcnNormalized;
    if (token == "sage")
        return model::GnnAggregator::SageMean;
    if (token == "gin")
        return model::GnnAggregator::GinSum;
    DITILE_THROW("unknown aggregator token '", token, "'");
}

const char *
rnnToken(model::RnnKind kind)
{
    return kind == model::RnnKind::Gru ? "gru" : "lstm";
}

model::RnnKind
rnnFromToken(const std::string &token)
{
    if (token == "lstm")
        return model::RnnKind::Lstm;
    if (token == "gru")
        return model::RnnKind::Gru;
    DITILE_THROW("unknown rnn token '", token, "'");
}

const char *
precisionToken(model::Precision precision)
{
    switch (precision) {
      case model::Precision::Fp32: return "fp32";
      case model::Precision::Fp16: return "fp16";
      case model::Precision::Int8: return "int8";
    }
    return "fp32";
}

model::Precision
precisionFromToken(const std::string &token)
{
    if (token == "fp32")
        return model::Precision::Fp32;
    if (token == "fp16")
        return model::Precision::Fp16;
    if (token == "int8")
        return model::Precision::Int8;
    DITILE_THROW("unknown precision token '", token, "'");
}

const char *
topologyToken(noc::TopologyKind kind)
{
    switch (kind) {
      case noc::TopologyKind::Mesh: return "mesh";
      case noc::TopologyKind::Ring: return "ring";
      case noc::TopologyKind::Crossbar: return "crossbar";
      case noc::TopologyKind::Reconfigurable: return "reconfigurable";
    }
    return "mesh";
}

noc::TopologyKind
topologyFromToken(const std::string &token)
{
    if (token == "mesh")
        return noc::TopologyKind::Mesh;
    if (token == "ring")
        return noc::TopologyKind::Ring;
    if (token == "crossbar")
        return noc::TopologyKind::Crossbar;
    if (token == "reconfigurable")
        return noc::TopologyKind::Reconfigurable;
    DITILE_THROW("unknown topology token '", token, "'");
}

// ---- Emission helpers. ----

/** %.17g double formatting; integral values print as integers. */
std::string
fmtDouble(double value)
{
    char buf[64];
    if (!std::isfinite(value))
        return "null";
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    return buf;
}

/** Key-value stream with automatic comma placement. */
class Emitter
{
  public:
    explicit Emitter(std::ostringstream &out) : out_(out) {}

    void
    open(const char *key = nullptr)
    {
        comma();
        if (key)
            out_ << jsonQuote(key) << ":";
        out_ << "{";
        first_ = true;
    }

    void
    close()
    {
        out_ << "}";
        first_ = false;
    }

    void
    raw(const char *key, const std::string &value)
    {
        comma();
        out_ << jsonQuote(key) << ":" << value;
    }

    void kv(const char *key, const std::string &v)
    {
        raw(key, jsonQuote(v));
    }
    void kv(const char *key, const char *v) { raw(key, jsonQuote(v)); }
    void kv(const char *key, bool v) { raw(key, v ? "true" : "false"); }
    void kv(const char *key, double v) { raw(key, fmtDouble(v)); }
    void
    kv(const char *key, long long v)
    {
        raw(key, std::to_string(v));
    }
    void
    kvU(const char *key, std::uint64_t v)
    {
        raw(key, std::to_string(v));
    }

    template <typename T>
    void
    intArray(const char *key, const std::vector<T> &values)
    {
        comma();
        out_ << jsonQuote(key) << ":[";
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (i)
                out_ << ",";
            out_ << static_cast<long long>(values[i]);
        }
        out_ << "]";
    }

    std::ostringstream &stream() { return out_; }

    void
    comma()
    {
        if (!first_)
            out_ << ",";
        first_ = false;
    }

  private:
    std::ostringstream &out_;
    bool first_ = true;
};

void
emitPartition(Emitter &e, const char *key,
              const graph::VertexPartition &partition)
{
    e.open(key);
    e.kv("parts", static_cast<long long>(partition.numParts()));
    std::vector<int> owners(
        static_cast<std::size_t>(partition.numVertices()));
    for (VertexId v = 0; v < partition.numVertices(); ++v)
        owners[static_cast<std::size_t>(v)] = partition.owner(v);
    e.intArray("owners", owners);
    e.close();
}

graph::VertexPartition
parsePartition(const JsonValue &v)
{
    const auto &owners = v.at("owners").items();
    // An unused partition (e.g. tilePartition of a temporal-parallel
    // mapping) serializes as zero parts; reconstruct it as default.
    if (v.at("parts").asInt() == 0)
        return {};
    graph::VertexPartition partition(
        static_cast<VertexId>(owners.size()),
        static_cast<int>(v.at("parts").asInt()));
    for (std::size_t i = 0; i < owners.size(); ++i) {
        const int owner = static_cast<int>(owners[i].asInt());
        if (owner != kInvalidTile)
            partition.assign(static_cast<VertexId>(i), owner);
    }
    return partition;
}

template <typename T>
std::vector<T>
parseIntArray(const JsonValue &v)
{
    std::vector<T> out;
    out.reserve(v.items().size());
    for (const auto &item : v.items())
        out.push_back(static_cast<T>(item.asInt()));
    return out;
}

} // namespace

std::string
ExecutionPlan::toJson() const
{
    std::ostringstream out;
    Emitter e(out);
    e.open();
    // Format 2 added the "overlap" option and the derived "task_graph"
    // section; format-1 documents still load (overlap defaults off).
    // Format 3 adds the "scaleout" section for multi-chip plans;
    // single-chip plans keep serializing as format 2 byte-identically.
    e.kv("plan_format", scaleout.enabled() ? 3ll : 2ll);
    e.kv("accelerator", acceleratorName);
    e.kv("workload", workloadName);
    e.kvU("workload_digest", workloadDigest);

    // ---- Hardware. ----
    e.open("hw");
    e.kv("tile_rows", static_cast<long long>(hw.tileRows));
    e.kv("tile_cols", static_cast<long long>(hw.tileCols));
    e.kv("pes_per_tile", static_cast<long long>(hw.pesPerTile));
    e.kv("macs_per_pe", static_cast<long long>(hw.macsPerPe));
    e.kv("frequency_ghz", hw.frequencyGhz);
    e.kvU("dist_buffer_bytes", hw.distBufferBytes);
    e.kvU("reuse_fifo_bytes", hw.reuseFifoBytes);
    e.kvU("local_buffer_bytes", hw.localBufferBytes);
    e.kvU("per_snapshot_config_cycles", hw.perSnapshotConfigCycles);
    e.open("noc");
    e.kv("rows", static_cast<long long>(hw.noc.rows));
    e.kv("cols", static_cast<long long>(hw.noc.cols));
    e.kv("link_bytes_per_cycle",
         static_cast<long long>(hw.noc.linkBytesPerCycle));
    e.kvU("router_latency_cycles", hw.noc.routerLatencyCycles);
    e.kv("topology", topologyToken(hw.noc.topology));
    e.kv("relink_span", static_cast<long long>(hw.noc.reLinkSpan));
    e.close();
    e.open("dram");
    e.kv("channels", static_cast<long long>(hw.dram.channels));
    e.kv("banks_per_channel",
         static_cast<long long>(hw.dram.banksPerChannel));
    e.kvU("row_bytes", hw.dram.rowBytes);
    e.kvU("row_hit_cycles", hw.dram.rowHitCycles);
    e.kvU("row_miss_cycles", hw.dram.rowMissCycles);
    e.kvU("row_conflict_cycles", hw.dram.rowConflictCycles);
    e.kv("channel_bytes_per_cycle", hw.dram.channelBytesPerCycle);
    e.close();
    e.open("energy");
    e.kv("fp32_add_pj", hw.energyTable.fp32AddPj);
    e.kv("fp32_mul_pj", hw.energyTable.fp32MulPj);
    e.kv("fp32_mac_pj", hw.energyTable.fp32MacPj);
    e.kv("activation_pj", hw.energyTable.activationPj);
    e.kv("sram_small_pj", hw.energyTable.sramSmallPjPerByte);
    e.kv("sram_medium_pj", hw.energyTable.sramMediumPjPerByte);
    e.kv("sram_large_pj", hw.energyTable.sramLargePjPerByte);
    e.kv("noc_link_pj", hw.energyTable.nocLinkPjPerByte);
    e.kv("noc_router_pj", hw.energyTable.nocRouterPjPerByte);
    e.kv("dram_pj", hw.energyTable.dramPjPerByte);
    e.kv("dram_activate_pj", hw.energyTable.dramActivatePj);
    e.kv("reconfig_event_pj", hw.energyTable.reconfigEventPj);
    e.kv("control_per_op_pj", hw.energyTable.controlPerOpPj);
    e.kv("control_overhead_fraction",
         hw.energyTable.controlOverheadFraction);
    e.close();
    e.close();

    // ---- Model shape. ----
    e.open("model");
    e.intArray("gcn_dims", modelConfig.gcnDims);
    e.kv("lstm_hidden", static_cast<long long>(modelConfig.lstmHidden));
    e.kv("bytes_per_value",
         static_cast<long long>(modelConfig.bytesPerValue));
    e.kv("aggregator", aggregatorToken(modelConfig.aggregator));
    e.kv("rnn", rnnToken(modelConfig.rnn));
    e.kv("precision", precisionToken(modelConfig.precision));
    e.close();

    // ---- Mapping. ----
    e.open("mapping");
    e.kv("spatial_only", mapping.spatialOnly);
    emitPartition(e, "row_partition", mapping.rowPartition);
    e.intArray("snapshot_column", mapping.snapshotColumn);
    emitPartition(e, "tile_partition", mapping.tilePartition);
    e.close();

    // ---- Engine options. ----
    e.open("options");
    e.kv("algo", algoToken(options.algo));
    e.kv("cross_fetch_fraction",
         options.accounting.crossFetchFraction);
    e.kv("cached_intermediate_fraction",
         options.accounting.cachedIntermediateFraction);
    e.kv("uncached_intermediate_fraction",
         options.accounting.uncachedIntermediateFraction);
    e.kv("gnn_mac_fraction", options.gnnMacFraction);
    e.kv("rnn_mac_fraction", options.rnnMacFraction);
    e.kv("rnn_separate_resource", options.rnnSeparateResource);
    e.kv("global_gnn_barrier", options.globalGnnBarrier);
    e.kv("reuse_fifo_forwarding", options.reuseFifoForwarding);
    e.kvU("reconfig_events_per_snapshot",
          options.reconfigEventsPerSnapshot);
    e.kv("dram_traffic_scale", options.dramTrafficScale);
    e.kv("compute_energy_scale", options.computeEnergyScale);
    e.kv("onchip_energy_scale", options.onChipEnergyScale);
    e.kv("offchip_energy_scale", options.offChipEnergyScale);
    e.kv("detailed_tile_timing", options.detailedTileTiming);
    e.kv("adaptive_relink", options.adaptiveRelink);
    e.kv("overlap", options.overlap);
    e.close();

    // ---- Algorithm-1 strategy. ----
    e.open("parallel");
    e.open("tiling");
    e.kv("tiling_factor",
         static_cast<long long>(parallel.tiling.tilingFactor));
    e.kv("dram_access_units", parallel.tiling.dramAccessUnits);
    e.kv("avg_subgraph_vertices",
         parallel.tiling.avgSubgraphVertices);
    e.kv("avg_subgraph_edges", parallel.tiling.avgSubgraphEdges);
    e.kv("refetch_factor", parallel.tiling.refetchFactor);
    e.kv("measured_cross", parallel.tiling.measuredCross);
    e.close();
    e.open("parallelism");
    e.kv("snapshot_groups",
         static_cast<long long>(parallel.parallelism.snapshotGroups));
    e.kv("vertex_parts",
         static_cast<long long>(parallel.parallelism.vertexParts));
    e.kv("snapshots_per_group",
         static_cast<long long>(
             parallel.parallelism.snapshotsPerGroup));
    e.kv("vertices_per_part",
         static_cast<long long>(parallel.parallelism.verticesPerPart));
    e.kv("tcomm", parallel.parallelism.tcomm);
    e.kv("rfscomm", parallel.parallelism.rfscomm);
    e.kv("recomm", parallel.parallelism.recomm);
    e.kv("total_comm_units", parallel.parallelism.totalCommUnits);
    e.close();
    e.close();

    // ---- Algorithm-2 BDW groups. ----
    e.comma();
    out << jsonQuote("groups") << ":[";
    for (std::size_t i = 0; i < groups.size(); ++i) {
        const auto &group = groups[i];
        if (i)
            out << ",";
        out << "{\"id\":" << group.groupId
            << ",\"snap_begin\":" << group.snapshotBegin
            << ",\"snap_end\":" << group.snapshotEnd
            << ",\"vertex_part\":" << group.vertexPart << "}";
    }
    out << "]";

    // ---- Re-Link reconfiguration schedule. ----
    e.open("relink");
    e.kv("adaptive", relink.adaptive);
    e.kvU("reconfig_events_per_snapshot",
          relink.reconfigEventsPerSnapshot);
    e.close();

    // ---- Fault-injection schedule. ----
    e.open("faults");
    e.kvU("seed", faults.seed);
    e.kv("dram_retry_fraction", faults.dramRetryFraction);
    e.kvU("noc_backoff", faults.nocBackoffCycles);
    e.kv("noc_retries", static_cast<long long>(faults.nocMaxRetries));
    e.comma();
    out << jsonQuote("events") << ":[";
    for (std::size_t i = 0; i < faults.events.size(); ++i) {
        const FaultEvent &ev = faults.events[i];
        if (i)
            out << ",";
        out << "{\"kind\":" << jsonQuote(faultKindToken(ev.kind))
            << ",\"snapshot\":" << ev.snapshot << ",\"row\":" << ev.row
            << ",\"col\":" << ev.col << ",\"channel\":" << ev.channel
            << "}";
    }
    out << "]";
    e.close();

    // ---- Multi-chip scale-out (format 3 only). ----
    if (scaleout.enabled()) {
        e.open("scaleout");
        e.kv("chips", static_cast<long long>(scaleout.chips));
        e.open("interchip");
        e.kv("bandwidth_gbps", scaleout.link.bandwidthGbps);
        e.kv("latency_ns", scaleout.link.latencyNs);
        e.kvU("packet_bytes", scaleout.link.packetBytes);
        e.kvU("packet_header_bytes", scaleout.link.packetHeaderBytes);
        e.close();
        e.kv("chunk_span", static_cast<long long>(scaleout.chunkSpan));
        e.intArray("chip_of_chunk", scaleout.chipOfChunk);
        e.close();
    }

    // ---- Task-graph skeleton (overlap scheduler input). ----
    // Derived entirely from the fields above, re-derived on load
    // (fromJson ignores it): serialized so plan documents are
    // self-describing for external tooling and so the content hash
    // pins the DAG shape alongside the knobs that induce it.
    {
        const TaskGraph tg = buildTaskGraph(*this);
        e.open("task_graph");
        e.comma();
        out << jsonQuote("lanes") << ":[";
        for (std::size_t i = 0; i < tg.lanes.size(); ++i) {
            if (i)
                out << ",";
            out << jsonQuote(tg.lanes[i].name());
        }
        out << "]";
        e.comma();
        out << jsonQuote("nodes") << ":[";
        for (std::size_t i = 0; i < tg.nodes.size(); ++i) {
            const TaskNode &n = tg.nodes[i];
            if (i)
                out << ",";
            out << "{\"id\":" << n.id << ",\"kind\":"
                << jsonQuote(taskKindToken(n.kind))
                << ",\"snapshot\":" << n.snapshot
                << ",\"lane\":" << n.lane << "}";
        }
        out << "]";
        std::vector<int> flat_edges;
        flat_edges.reserve(tg.edges.size() * 2);
        for (const auto &[u, v] : tg.edges) {
            flat_edges.push_back(u);
            flat_edges.push_back(v);
        }
        e.intArray("edges", flat_edges);
        e.close();
    }

    // ---- Redundancy-free per-snapshot plans. ----
    e.comma();
    out << jsonQuote("snapshots") << ":[";
    const std::vector<model::SnapshotPlan> empty;
    const auto &snaps = snapshots ? *snapshots : empty;
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        const auto &snap = snaps[i];
        if (i)
            out << ",";
        Emitter se(out);
        se.open();
        se.kv("full_recompute", snap.fullRecompute);
        se.kvU("adjacency_updates",
               static_cast<std::uint64_t>(snap.adjacencyUpdates));
        se.intArray("rnn_vertices", snap.rnnVertices);
        se.comma();
        out << jsonQuote("gcn") << ":[";
        for (std::size_t l = 0; l < snap.gcn.size(); ++l) {
            const auto &layer = snap.gcn[l];
            if (l)
                out << ",";
            Emitter le(out);
            le.open();
            le.kv("gather_edges",
                  static_cast<long long>(layer.gatherEdges));
            le.kv("unique_inputs",
                  static_cast<long long>(layer.uniqueInputs));
            le.intArray("vertices", layer.vertices);
            le.close();
        }
        out << "]";
        se.close();
    }
    out << "]";
    e.close();
    return out.str();
}

ExecutionPlan
ExecutionPlan::fromJson(const std::string &text)
{
    const JsonValue doc = JsonValue::parse(text);
    const long long format = doc.at("plan_format").asInt();
    if (format != 1 && format != 2 && format != 3)
        DITILE_THROW("unsupported plan_format");

    ExecutionPlan plan;
    plan.acceleratorName = doc.at("accelerator").asString();
    plan.workloadName = doc.at("workload").asString();
    // Documents predating the digest field load with key 0.
    if (const JsonValue *digest = doc.find("workload_digest"))
        plan.workloadDigest = digest->asUint();

    const JsonValue &hw = doc.at("hw");
    plan.hw.tileRows = static_cast<int>(hw.at("tile_rows").asInt());
    plan.hw.tileCols = static_cast<int>(hw.at("tile_cols").asInt());
    plan.hw.pesPerTile =
        static_cast<int>(hw.at("pes_per_tile").asInt());
    plan.hw.macsPerPe = static_cast<int>(hw.at("macs_per_pe").asInt());
    plan.hw.frequencyGhz = hw.at("frequency_ghz").asDouble();
    plan.hw.distBufferBytes = hw.at("dist_buffer_bytes").asUint();
    plan.hw.reuseFifoBytes = hw.at("reuse_fifo_bytes").asUint();
    plan.hw.localBufferBytes = hw.at("local_buffer_bytes").asUint();
    plan.hw.perSnapshotConfigCycles =
        hw.at("per_snapshot_config_cycles").asUint();
    const JsonValue &noc = hw.at("noc");
    plan.hw.noc.rows = static_cast<int>(noc.at("rows").asInt());
    plan.hw.noc.cols = static_cast<int>(noc.at("cols").asInt());
    plan.hw.noc.linkBytesPerCycle =
        static_cast<int>(noc.at("link_bytes_per_cycle").asInt());
    plan.hw.noc.routerLatencyCycles =
        noc.at("router_latency_cycles").asUint();
    plan.hw.noc.topology =
        topologyFromToken(noc.at("topology").asString());
    plan.hw.noc.reLinkSpan =
        static_cast<int>(noc.at("relink_span").asInt());
    const JsonValue &dram = hw.at("dram");
    plan.hw.dram.channels =
        static_cast<int>(dram.at("channels").asInt());
    plan.hw.dram.banksPerChannel =
        static_cast<int>(dram.at("banks_per_channel").asInt());
    plan.hw.dram.rowBytes = dram.at("row_bytes").asUint();
    plan.hw.dram.rowHitCycles = dram.at("row_hit_cycles").asUint();
    plan.hw.dram.rowMissCycles = dram.at("row_miss_cycles").asUint();
    plan.hw.dram.rowConflictCycles =
        dram.at("row_conflict_cycles").asUint();
    plan.hw.dram.channelBytesPerCycle =
        dram.at("channel_bytes_per_cycle").asDouble();
    const JsonValue &energy = hw.at("energy");
    auto &table = plan.hw.energyTable;
    table.fp32AddPj = energy.at("fp32_add_pj").asDouble();
    table.fp32MulPj = energy.at("fp32_mul_pj").asDouble();
    table.fp32MacPj = energy.at("fp32_mac_pj").asDouble();
    table.activationPj = energy.at("activation_pj").asDouble();
    table.sramSmallPjPerByte = energy.at("sram_small_pj").asDouble();
    table.sramMediumPjPerByte = energy.at("sram_medium_pj").asDouble();
    table.sramLargePjPerByte = energy.at("sram_large_pj").asDouble();
    table.nocLinkPjPerByte = energy.at("noc_link_pj").asDouble();
    table.nocRouterPjPerByte = energy.at("noc_router_pj").asDouble();
    table.dramPjPerByte = energy.at("dram_pj").asDouble();
    table.dramActivatePj = energy.at("dram_activate_pj").asDouble();
    table.reconfigEventPj = energy.at("reconfig_event_pj").asDouble();
    table.controlPerOpPj = energy.at("control_per_op_pj").asDouble();
    table.controlOverheadFraction =
        energy.at("control_overhead_fraction").asDouble();

    const JsonValue &mc = doc.at("model");
    plan.modelConfig.gcnDims = parseIntArray<int>(mc.at("gcn_dims"));
    plan.modelConfig.lstmHidden =
        static_cast<int>(mc.at("lstm_hidden").asInt());
    plan.modelConfig.bytesPerValue =
        static_cast<int>(mc.at("bytes_per_value").asInt());
    plan.modelConfig.aggregator =
        aggregatorFromToken(mc.at("aggregator").asString());
    plan.modelConfig.rnn = rnnFromToken(mc.at("rnn").asString());
    plan.modelConfig.precision =
        precisionFromToken(mc.at("precision").asString());

    const JsonValue &mapping = doc.at("mapping");
    plan.mapping.spatialOnly = mapping.at("spatial_only").asBool();
    plan.mapping.rowPartition =
        parsePartition(mapping.at("row_partition"));
    plan.mapping.snapshotColumn =
        parseIntArray<int>(mapping.at("snapshot_column"));
    plan.mapping.tilePartition =
        parsePartition(mapping.at("tile_partition"));

    const JsonValue &options = doc.at("options");
    plan.options.algo = algoFromToken(options.at("algo").asString());
    plan.options.accounting.crossFetchFraction =
        options.at("cross_fetch_fraction").asDouble();
    plan.options.accounting.cachedIntermediateFraction =
        options.at("cached_intermediate_fraction").asDouble();
    plan.options.accounting.uncachedIntermediateFraction =
        options.at("uncached_intermediate_fraction").asDouble();
    plan.options.gnnMacFraction =
        options.at("gnn_mac_fraction").asDouble();
    plan.options.rnnMacFraction =
        options.at("rnn_mac_fraction").asDouble();
    plan.options.rnnSeparateResource =
        options.at("rnn_separate_resource").asBool();
    plan.options.globalGnnBarrier =
        options.at("global_gnn_barrier").asBool();
    plan.options.reuseFifoForwarding =
        options.at("reuse_fifo_forwarding").asBool();
    plan.options.reconfigEventsPerSnapshot =
        options.at("reconfig_events_per_snapshot").asUint();
    plan.options.dramTrafficScale =
        options.at("dram_traffic_scale").asDouble();
    plan.options.computeEnergyScale =
        options.at("compute_energy_scale").asDouble();
    plan.options.onChipEnergyScale =
        options.at("onchip_energy_scale").asDouble();
    plan.options.offChipEnergyScale =
        options.at("offchip_energy_scale").asDouble();
    plan.options.detailedTileTiming =
        options.at("detailed_tile_timing").asBool();
    plan.options.adaptiveRelink =
        options.at("adaptive_relink").asBool();
    // Format-1 documents predate the task-graph scheduler: they load
    // with the staged timeline (overlap off).
    if (const JsonValue *overlap = options.find("overlap"))
        plan.options.overlap = overlap->asBool();

    const JsonValue &tiling = doc.at("parallel").at("tiling");
    plan.parallel.tiling.tilingFactor =
        static_cast<int>(tiling.at("tiling_factor").asInt());
    plan.parallel.tiling.dramAccessUnits =
        tiling.at("dram_access_units").asDouble();
    plan.parallel.tiling.avgSubgraphVertices =
        tiling.at("avg_subgraph_vertices").asDouble();
    plan.parallel.tiling.avgSubgraphEdges =
        tiling.at("avg_subgraph_edges").asDouble();
    plan.parallel.tiling.refetchFactor =
        tiling.at("refetch_factor").asDouble();
    plan.parallel.tiling.measuredCross =
        tiling.at("measured_cross").asDouble();
    const JsonValue &par = doc.at("parallel").at("parallelism");
    plan.parallel.parallelism.snapshotGroups =
        static_cast<int>(par.at("snapshot_groups").asInt());
    plan.parallel.parallelism.vertexParts =
        static_cast<int>(par.at("vertex_parts").asInt());
    plan.parallel.parallelism.snapshotsPerGroup =
        static_cast<int>(par.at("snapshots_per_group").asInt());
    plan.parallel.parallelism.verticesPerPart =
        static_cast<int>(par.at("vertices_per_part").asInt());
    plan.parallel.parallelism.tcomm = par.at("tcomm").asDouble();
    plan.parallel.parallelism.rfscomm = par.at("rfscomm").asDouble();
    plan.parallel.parallelism.recomm = par.at("recomm").asDouble();
    plan.parallel.parallelism.totalCommUnits =
        par.at("total_comm_units").asDouble();

    for (const auto &item : doc.at("groups").items()) {
        workload::BalancedGroup group;
        group.groupId = static_cast<int>(item.at("id").asInt());
        group.snapshotBegin =
            static_cast<SnapshotId>(item.at("snap_begin").asInt());
        group.snapshotEnd =
            static_cast<SnapshotId>(item.at("snap_end").asInt());
        group.vertexPart =
            static_cast<int>(item.at("vertex_part").asInt());
        plan.groups.push_back(group);
    }

    const JsonValue &relink = doc.at("relink");
    plan.relink.adaptive = relink.at("adaptive").asBool();
    plan.relink.reconfigEventsPerSnapshot =
        relink.at("reconfig_events_per_snapshot").asUint();

    // Plans serialized before the fault model existed carry no
    // "faults" key; they load as fault-free.
    if (const JsonValue *faults = doc.find("faults")) {
        plan.faults.seed = faults->at("seed").asUint();
        plan.faults.dramRetryFraction =
            faults->at("dram_retry_fraction").asDouble();
        plan.faults.nocBackoffCycles =
            faults->at("noc_backoff").asUint();
        plan.faults.nocMaxRetries =
            static_cast<int>(faults->at("noc_retries").asInt());
        for (const auto &item : faults->at("events").items()) {
            FaultEvent ev;
            ev.kind = faultKindFromToken(item.at("kind").asString());
            ev.snapshot =
                static_cast<SnapshotId>(item.at("snapshot").asInt());
            ev.row = static_cast<int>(item.at("row").asInt());
            ev.col = static_cast<int>(item.at("col").asInt());
            ev.channel = static_cast<int>(item.at("channel").asInt());
            plan.faults.events.push_back(ev);
        }
    }

    // Format-2 (and earlier) documents carry no "scaleout" key; they
    // load as single-chip plans.
    if (const JsonValue *so = doc.find("scaleout")) {
        plan.scaleout.chips = static_cast<int>(so->at("chips").asInt());
        const JsonValue &link = so->at("interchip");
        plan.scaleout.link.bandwidthGbps =
            link.at("bandwidth_gbps").asDouble();
        plan.scaleout.link.latencyNs = link.at("latency_ns").asDouble();
        plan.scaleout.link.packetBytes =
            link.at("packet_bytes").asUint();
        plan.scaleout.link.packetHeaderBytes =
            link.at("packet_header_bytes").asUint();
        plan.scaleout.chunkSpan = static_cast<VertexId>(
            so->at("chunk_span").asInt());
        plan.scaleout.chipOfChunk =
            parseIntArray<int>(so->at("chip_of_chunk"));
    }

    auto snaps = std::make_shared<std::vector<model::SnapshotPlan>>();
    for (const auto &item : doc.at("snapshots").items()) {
        model::SnapshotPlan snap;
        snap.fullRecompute = item.at("full_recompute").asBool();
        snap.adjacencyUpdates = static_cast<std::size_t>(
            item.at("adjacency_updates").asUint());
        snap.rnnVertices =
            parseIntArray<VertexId>(item.at("rnn_vertices"));
        for (const auto &layer_item : item.at("gcn").items()) {
            model::LayerWork layer;
            layer.gatherEdges = static_cast<EdgeId>(
                layer_item.at("gather_edges").asInt());
            layer.uniqueInputs = static_cast<VertexId>(
                layer_item.at("unique_inputs").asInt());
            layer.vertices =
                parseIntArray<VertexId>(layer_item.at("vertices"));
            snap.gcn.push_back(std::move(layer));
        }
        snaps->push_back(std::move(snap));
    }
    plan.snapshots = std::move(snaps);
    return plan;
}

std::uint64_t
ExecutionPlan::contentHash() const
{
    // FNV-1a over the canonical serialization: equal hash <=>
    // byte-identical canonical form (modulo collisions).
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : toJson())
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return h;
}

ExecutionPlan
buildEnginePlan(const graph::DynamicGraph &dg,
                const model::DgnnConfig &model_config,
                const AcceleratorConfig &hw, const MappingSpec &mapping,
                const EngineOptions &options,
                const std::string &accelerator_name, PlanCache *cache)
{
    Tracer &tracer = Tracer::global();
    const bool obs_trace = tracer.traceEnabled();
    const std::uint64_t plan_track =
        Tracer::trackBase() + Tracer::kPlanTrack;
    auto planSpan = [&](const std::string &nm, TraceEvent ev) {
        if (!obs_trace)
            return;
        ev.cat = "plan";
        ev.name = nm;
        ev.track = plan_track;
        ev.ts = tracer.nextStep(plan_track);
        ev.dur = 1;
        tracer.record(std::move(ev));
    };

    ExecutionPlan plan;
    plan.acceleratorName = accelerator_name;
    plan.workloadName = dg.name();
    // Pure content key (independent of whether digests are enabled),
    // so plan JSON is identical with and without the digest layer.
    plan.workloadDigest =
        workload::loadDigestKey(dg, model_config.numGcnLayers());
    {
        char key[24];
        std::snprintf(key, sizeof(key), "%016llx",
                      static_cast<unsigned long long>(
                          plan.workloadDigest));
        TraceEvent ev;
        ev.addArg("key", std::string(key));
        planSpan("workload-digest-key", std::move(ev));
    }
    plan.hw = hw;
    plan.modelConfig = model_config;
    plan.mapping = mapping;
    plan.options = options;
    plan.relink.adaptive = options.adaptiveRelink;
    plan.relink.reconfigEventsPerSnapshot =
        options.reconfigEventsPerSnapshot;
    plan.snapshots = cache
        ? cache->obtain(dg, model_config, options.algo)
        : PlanCache::buildSnapshotPlans(dg, model_config,
                                        options.algo);
    if (obs_trace) {
        tracer.nameTrack(plan_track, accelerator_name + ": plan");
        TraceEvent ev;
        ev.addArg("snapshots", static_cast<long long>(
                      plan.snapshots ? plan.snapshots->size() : 0))
            .addArg("cached", std::string(cache ? "yes" : "no"));
        planSpan("snapshot-planning", std::move(ev));
    }
    if (tracer.metricsEnabled())
        tracer.addMetric("plan.builds", 1);
    return plan;
}

} // namespace ditile::sim
