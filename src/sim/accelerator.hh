/**
 * @file
 * Abstract accelerator interface.
 */

#ifndef DITILE_SIM_ACCELERATOR_HH
#define DITILE_SIM_ACCELERATOR_HH

#include <memory>
#include <string>

#include "graph/dynamic_graph.hh"
#include "model/dgnn_config.hh"
#include "sim/run_result.hh"

namespace ditile::sim {

/**
 * One accelerator model: executes a DGNN inference over a dynamic
 * graph and reports timing, traffic and energy.
 */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** Display name, e.g. "ReaDy" or "DiTile-DGNN". */
    virtual std::string name() const = 0;

    /** Simulate one full inference. */
    virtual RunResult run(const graph::DynamicGraph &dg,
                          const model::DgnnConfig &model_config) = 0;
};

} // namespace ditile::sim

#endif // DITILE_SIM_ACCELERATOR_HH
