/**
 * @file
 * Abstract accelerator interface: plan construction and plan replay.
 */

#ifndef DITILE_SIM_ACCELERATOR_HH
#define DITILE_SIM_ACCELERATOR_HH

#include <memory>
#include <string>

#include "graph/dynamic_graph.hh"
#include "model/dgnn_config.hh"
#include "sim/execution_plan.hh"
#include "sim/run_result.hh"

namespace ditile::sim {

class PlanCache;

/**
 * One accelerator model: plans a DGNN inference over a dynamic graph
 * (the Figure-5 front end), executes the plan, and reports timing,
 * traffic and energy.
 *
 * The two halves are separable: plan() is pure analysis whose output
 * serializes, caches, and replays; execute() is a deterministic replay
 * of a plan at any thread count. run() is the one-shot convenience
 * combining both — `run(dg, m)` and `execute(dg, plan(dg, m))` return
 * bit-identical results (asserted by plan_test.cc).
 */
class Accelerator
{
  public:
    virtual ~Accelerator() = default;

    /** Display name, e.g. "ReaDy" or "DiTile-DGNN". */
    virtual std::string name() const = 0;

    /**
     * Build the complete execution plan for one inference. When a
     * PlanCache is supplied, the expensive per-snapshot planning is
     * fetched from (or published to) the cache.
     */
    virtual ExecutionPlan plan(const graph::DynamicGraph &dg,
                               const model::DgnnConfig &model_config,
                               PlanCache *cache = nullptr) = 0;

    /** Replay a previously built plan. */
    RunResult
    execute(const graph::DynamicGraph &dg,
            const ExecutionPlan &execution_plan)
    {
        return executePlan(dg, execution_plan);
    }

    /** Simulate one full inference (plan + execute). */
    virtual RunResult
    run(const graph::DynamicGraph &dg,
        const model::DgnnConfig &model_config)
    {
        return execute(dg, plan(dg, model_config));
    }
};

} // namespace ditile::sim

#endif // DITILE_SIM_ACCELERATOR_HH
