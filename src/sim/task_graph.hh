/**
 * @file
 * Comp/Comm task DAG built from an ExecutionPlan.
 *
 * The staged engine times a run through four global barriers; the task
 * graph replaces the barriers with explicit dependencies between typed
 * tasks bound to per-device resource lanes, so GNN compute, RNN
 * compute, NoC traffic, DRAM streaming and Re-Link reconfiguration
 * overlap whenever their data dependencies allow (the pipelining idea
 * of PiPAD / DGNN-Booster applied to the paper's timing model).
 *
 * The graph is *structural*: it is a pure function of the plan (the
 * mapping, the policy knobs and the snapshot count), never of realized
 * durations or fault outcomes. Durations are filled in by the engine
 * after its evaluation stages, and the deterministic list scheduler
 * (scheduler.hh) turns the annotated graph into start/finish times.
 *
 * Canonical task ids are snapshot-major: for each snapshot t the tasks
 * are enumerated DramStream, GnnCompute, SpatialComm, TemporalComm
 * (boundary snapshots only), RnnCompute, RelinkReconfig. Ids therefore
 * ascend with t within every kind, which is what makes the scheduler's
 * (ready_cycle, id) tie-break reproduce snapshot order on every lane.
 */

#ifndef DITILE_SIM_TASK_GRAPH_HH
#define DITILE_SIM_TASK_GRAPH_HH

#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace ditile::sim {

struct ExecutionPlan;

/** What a task models; one per engine sub-model phase. */
enum class TaskKind
{
    GnnCompute,     ///< Critical-tile GNN phase of one snapshot.
    RnnCompute,     ///< Critical-tile RNN phase of one snapshot.
    SpatialComm,    ///< GNN-phase spatial NoC traffic.
    TemporalComm,   ///< RNN-boundary temporal + reuse NoC traffic.
    DramStream,     ///< Off-chip stream of one snapshot.
    RelinkReconfig, ///< Per-snapshot Re-Link switch budget.
    ChipCompute,    ///< One chip's full snapshot in a scale-out
                    ///< cluster (sim/scaleout.hh).
    InterChipComm,  ///< Cross-chip boundary exchange after one
                    ///< snapshot.
};

/** Canonical serialization token ("gnn", "rnn", "spatial", ...). */
const char *taskKindToken(TaskKind kind);

/**
 * Exclusive device a task occupies while it runs. Lanes serialize the
 * tasks bound to them; distinct lanes run concurrently.
 */
enum class LaneKind
{
    TileColumn,      ///< One tile column's MAC arrays (the whole grid
                     ///< under spatial-only mapping).
    RnnEngine,       ///< One column's RNN issue slot. The staged
                     ///< timeline never re-blocks a column on its RNN
                     ///< phase (the temporal chain already serializes
                     ///< RNN globally), so RNN compute gets its own
                     ///< lane regardless of rnnSeparateResource.
    NocColumn,       ///< One column's share of the NoC.
    TemporalLink,    ///< Cross-column boundary links. Never binds: the
                     ///< RNN chain already serializes boundaries.
    DramChannel,     ///< The off-chip channel group (the DRAM model
                     ///< serializes streams through one cursor).
    RelinkController,///< The Re-Link controller's reconfig sequencer.
    Chip,            ///< One whole chip of a scale-out cluster.
    InterChipLink,   ///< One chip's egress inter-chip link.
};

/** Canonical serialization token ("tile-col", "rnn-engine", ...). */
const char *laneKindToken(LaneKind kind);

/** One exclusive resource lane. */
struct ResourceLane
{
    LaneKind kind = LaneKind::TileColumn;
    int index = 0; ///< Column / channel id; 0 for singleton devices.

    /** Canonical display name, e.g. "tile-col:3" or "dram:0". */
    std::string name() const;
};

/** One schedulable task. */
struct TaskNode
{
    int id = 0;
    TaskKind kind = TaskKind::GnnCompute;
    SnapshotId snapshot = 0;
    int lane = 0;       ///< Index into TaskGraph::lanes.
    Cycle duration = 0; ///< Filled by the engine; 0 until annotated.
};

/**
 * The full DAG: lanes, nodes in canonical id order, and dependency
 * edges (src must finish before dst may start) in emission order.
 */
struct TaskGraph
{
    std::vector<ResourceLane> lanes;
    std::vector<TaskNode> nodes;
    std::vector<std::pair<int, int>> edges;

    /** Task ids of one snapshot; -1 where the task does not exist. */
    struct SnapshotTasks
    {
        int dram = -1;
        int gnn = -1;
        int spatial = -1;
        int temporal = -1;
        int rnn = -1;
        int relink = -1;
    };
    std::vector<SnapshotTasks> bySnapshot;

    int addLane(LaneKind kind, int index);
    int addTask(TaskKind kind, SnapshotId snapshot, int lane);
    void addDep(int src, int dst);
};

/**
 * Build the structural task graph for a plan. Durations are zero; the
 * engine annotates them from its evaluation stages. The construction
 * relaxes the staged timeline's barriers to the true data
 * dependencies, and only relaxes: with staged per-task durations the
 * scheduled makespan is provably <= the staged end-to-end time.
 */
TaskGraph buildTaskGraph(const ExecutionPlan &plan);

} // namespace ditile::sim

#endif // DITILE_SIM_TASK_GRAPH_HH
