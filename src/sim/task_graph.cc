/**
 * @file
 * Structural task-graph construction from an ExecutionPlan.
 */

#include "sim/task_graph.hh"

#include <algorithm>

#include "sim/execution_plan.hh"
#include "sim/scaleout.hh"

namespace ditile::sim {

const char *
taskKindToken(TaskKind kind)
{
    switch (kind) {
    case TaskKind::GnnCompute: return "gnn";
    case TaskKind::RnnCompute: return "rnn";
    case TaskKind::SpatialComm: return "spatial";
    case TaskKind::TemporalComm: return "temporal";
    case TaskKind::DramStream: return "dram";
    case TaskKind::RelinkReconfig: return "relink";
    case TaskKind::ChipCompute: return "chip";
    case TaskKind::InterChipComm: return "interchip";
    }
    return "gnn";
}

const char *
laneKindToken(LaneKind kind)
{
    switch (kind) {
    case LaneKind::TileColumn: return "tile-col";
    case LaneKind::RnnEngine: return "rnn-engine";
    case LaneKind::NocColumn: return "noc-col";
    case LaneKind::TemporalLink: return "temporal-link";
    case LaneKind::DramChannel: return "dram";
    case LaneKind::RelinkController: return "relink";
    case LaneKind::Chip: return "chip";
    case LaneKind::InterChipLink: return "interchip";
    }
    return "tile-col";
}

std::string
ResourceLane::name() const
{
    return std::string(laneKindToken(kind)) + ":" +
        std::to_string(index);
}

int
TaskGraph::addLane(LaneKind kind, int index)
{
    lanes.push_back({kind, index});
    return static_cast<int>(lanes.size()) - 1;
}

int
TaskGraph::addTask(TaskKind kind, SnapshotId snapshot, int lane)
{
    TaskNode node;
    node.id = static_cast<int>(nodes.size());
    node.kind = kind;
    node.snapshot = snapshot;
    node.lane = lane;
    nodes.push_back(node);
    return node.id;
}

void
TaskGraph::addDep(int src, int dst)
{
    edges.emplace_back(src, dst);
}

TaskGraph
buildTaskGraph(const ExecutionPlan &plan)
{
    // Scale-out plans schedule whole chips, not tile columns: the
    // cluster-level DAG is the plan's task graph.
    if (plan.scaleout.enabled())
        return buildClusterTaskGraph(plan);
    TaskGraph g;
    const SnapshotId num_snapshots = plan.numSnapshots();
    const MappingSpec &mapping = plan.mapping;
    const bool spatial_only = mapping.spatialOnly;
    // Tolerant column lookup: serialization may build the graph for
    // plans whose mapping has not been validated against a workload.
    auto col_of = [&](SnapshotId t) {
        const auto i = static_cast<std::size_t>(t);
        return spatial_only || i >= mapping.snapshotColumn.size()
            ? 0 : mapping.snapshotColumn[i];
    };
    auto boundary_at = [&](SnapshotId t) {
        return !spatial_only && t > 0 && col_of(t - 1) != col_of(t);
    };

    // ---- Lanes, in a canonical order derived from the mapping only:
    // the singleton devices first, then the used columns ascending.
    const int dram_lane = g.addLane(LaneKind::DramChannel, 0);
    const int relink_lane = g.addLane(LaneKind::RelinkController, 0);
    std::vector<int> used_cols;
    for (SnapshotId t = 0; t < num_snapshots; ++t)
        used_cols.push_back(col_of(t));
    if (used_cols.empty())
        used_cols.push_back(0);
    std::sort(used_cols.begin(), used_cols.end());
    used_cols.erase(std::unique(used_cols.begin(), used_cols.end()),
                    used_cols.end());
    const int max_col = used_cols.back();
    std::vector<int> tile_lane(static_cast<std::size_t>(max_col) + 1,
                               -1);
    std::vector<int> rnn_lane(static_cast<std::size_t>(max_col) + 1,
                              -1);
    std::vector<int> noc_lane(static_cast<std::size_t>(max_col) + 1,
                              -1);
    for (const int c : used_cols) {
        const auto ci = static_cast<std::size_t>(c);
        tile_lane[ci] = g.addLane(LaneKind::TileColumn, c);
        if (!spatial_only)
            rnn_lane[ci] = g.addLane(LaneKind::RnnEngine, c);
        noc_lane[ci] = g.addLane(LaneKind::NocColumn, c);
    }
    int temporal_lane = -1;
    for (SnapshotId t = 0; t < num_snapshots; ++t) {
        if (boundary_at(t)) {
            temporal_lane = g.addLane(LaneKind::TemporalLink, 0);
            break;
        }
    }

    // ---- Tasks, snapshot-major so ids ascend with t in every kind.
    g.bySnapshot.resize(static_cast<std::size_t>(num_snapshots));
    for (SnapshotId t = 0; t < num_snapshots; ++t) {
        const auto ci = static_cast<std::size_t>(col_of(t));
        auto &st = g.bySnapshot[static_cast<std::size_t>(t)];
        st.dram = g.addTask(TaskKind::DramStream, t, dram_lane);
        st.gnn = g.addTask(TaskKind::GnnCompute, t, tile_lane[ci]);
        st.spatial = g.addTask(TaskKind::SpatialComm, t, noc_lane[ci]);
        if (boundary_at(t)) {
            st.temporal = g.addTask(TaskKind::TemporalComm, t,
                                    temporal_lane);
        }
        st.rnn = g.addTask(TaskKind::RnnCompute, t,
                           spatial_only ? tile_lane[0] : rnn_lane[ci]);
        // Always present so the structure is independent of the
        // hardware's per-snapshot switch cost (which may be zero).
        st.relink = g.addTask(TaskKind::RelinkReconfig, t, relink_lane);
    }

    // ---- Dependencies. The staged timeline's barriers relax to:
    //   - the DRAM stream chain (device cursor),
    //   - the Re-Link reconfiguration chain (controller sequencer),
    //   - RNN[t-1] -> RNN[t] (the temporal hidden-state chain),
    //   - GNN/Spatial/DRAM[t] -> RNN[t] (the snapshot's own inputs),
    //   - TemporalComm[t] between RNN[t-1] and RNN[t] on boundaries,
    //   - under spatial-only mapping, RNN[t-1] -> GNN/Spatial[t]
    //     (snapshots run sequentially over the whole grid),
    //   - under globalGnnBarrier, every GNN/Spatial/DRAM task ->
    //     RNN[0]; the RNN chain propagates the barrier onward.
    // Column occupancy needs no edges: same-column GNN tasks are all
    // ready at cycle 0 and their lane pops them in id (= snapshot)
    // order, reproducing the staged col_free chaining exactly.
    for (SnapshotId t = 0; t < num_snapshots; ++t) {
        const auto &st = g.bySnapshot[static_cast<std::size_t>(t)];
        if (t > 0) {
            const auto &pv =
                g.bySnapshot[static_cast<std::size_t>(t) - 1];
            g.addDep(pv.dram, st.dram);
            if (spatial_only) {
                g.addDep(pv.rnn, st.gnn);
                g.addDep(pv.rnn, st.spatial);
            }
            if (st.temporal != -1)
                g.addDep(pv.rnn, st.temporal);
            g.addDep(pv.rnn, st.rnn);
            g.addDep(pv.relink, st.relink);
        }
        g.addDep(st.gnn, st.rnn);
        g.addDep(st.spatial, st.rnn);
        g.addDep(st.dram, st.rnn);
        if (st.temporal != -1)
            g.addDep(st.temporal, st.rnn);
    }
    if (!spatial_only && plan.options.globalGnnBarrier &&
        num_snapshots > 0) {
        const int rnn0 = g.bySnapshot[0].rnn;
        for (SnapshotId t = 1; t < num_snapshots; ++t) {
            const auto &st = g.bySnapshot[static_cast<std::size_t>(t)];
            g.addDep(st.gnn, rnn0);
            g.addDep(st.spatial, rnn0);
            g.addDep(st.dram, rnn0);
        }
    }
    return g;
}

} // namespace ditile::sim
