/**
 * @file
 * Training-iteration simulation (paper §4.1: "the proposed
 * methodology can be applied to the training stage where gradient and
 * embedding propagation follow graph structure as well").
 *
 * One training iteration = the forward inference pass (reusing the
 * inference engine unchanged) + a backward sweep + a weight-gradient
 * all-reduce + the optimizer update:
 *
 *  - backward compute re-runs every forward product twice (gradient
 *    w.r.t. inputs and w.r.t. weights) on the same tile mapping, so
 *    its critical path is twice the forward compute;
 *  - backward spatial communication is the forward gather transposed
 *    — identical volume along the same links;
 *  - weight gradients are ring-all-reduced across the active tiles
 *    (reduce-scatter + all-gather, 2(N-1) neighbor steps), replayed
 *    on the NoC model;
 *  - the optimizer update streams every parameter once through the
 *    MAC arrays.
 */

#ifndef DITILE_SIM_TRAINING_ENGINE_HH
#define DITILE_SIM_TRAINING_ENGINE_HH

#include "model/training.hh"
#include "sim/engine.hh"

namespace ditile::sim {

/**
 * Outcome of one simulated training iteration.
 */
struct TrainingResult
{
    /** The embedded forward (inference) pass. */
    RunResult forward;

    Cycle backwardComputeCycles = 0;
    Cycle backwardCommCycles = 0;
    Cycle allReduceCycles = 0;
    Cycle weightUpdateCycles = 0;

    /** End-to-end iteration time (forward + overlapped backward +
     *  all-reduce + update). */
    Cycle iterationCycles = 0;

    /** Whole-iteration operation counts (model-level). */
    model::TrainingOps ops;

    /** Whole-iteration energy. */
    energy::EnergyBreakdown energy;
};

/**
 * Simulate one training iteration over the dynamic graph.
 */
TrainingResult runTrainingIteration(const graph::DynamicGraph &dg,
                                    const model::DgnnConfig &model_config,
                                    const AcceleratorConfig &hw,
                                    const MappingSpec &mapping,
                                    const EngineOptions &options,
                                    const std::string &accelerator_name);

} // namespace ditile::sim

#endif // DITILE_SIM_TRAINING_ENGINE_HH
