/**
 * @file
 * Detailed tile microarchitecture model (paper Figure 5 (c)-(d)).
 *
 * Each tile integrates a 4x4 PE array (each PE a 4x4 MAC array with a
 * local buffer, data dispatcher and post-processing unit), a
 * distributed buffer, and a reuse FIFO operating as a double buffer.
 * This model schedules per-vertex work onto the PE array explicitly:
 *
 *  - vertex tasks are list-scheduled (longest-processing-time first)
 *    onto the PEs, so intra-tile imbalance shows up as idle MACs;
 *  - the PPU drains activations concurrently with the MAC array and
 *    can become the bottleneck for element-wise-heavy phases;
 *  - input working sets larger than the PE local buffer stall the PE
 *    while the distributed buffer refills it;
 *  - reuse-FIFO hits bypass the distributed buffer entirely.
 *
 * The phase-level engine uses a flat ops/MACs conversion for speed;
 * this model bounds that approximation (tests cross-validate the two)
 * and lets microarchitecture studies vary PE-level parameters.
 */

#ifndef DITILE_SIM_TILE_MODEL_HH
#define DITILE_SIM_TILE_MODEL_HH

#include <vector>

#include "common/types.hh"

namespace ditile::sim {

/**
 * Tile microarchitecture parameters (defaults per the paper).
 */
struct TileConfig
{
    int pes = 16;        ///< 4 x 4 PE array.
    int macsPerPe = 16;  ///< 4 x 4 multiplier + adder array.
    ByteCount localBufferBytes = 256u << 10;
    ByteCount reuseFifoBytes = 512u << 10;
    /** Distributed-buffer -> local-buffer refill bandwidth (per PE,
     *  the narrow path local overflows pay). */
    int refillBytesPerCycle = 64;

    /** Tile-level distributed-buffer port width (the wide path the
     *  instruction stream's loads/stores share). */
    int bufferPortBytesPerCycle = 512;
    /** Dispatcher latency charged once per vertex task. */
    Cycle dispatchCycles = 2;
    /** Post-processing (activation/element-wise) ops per PE cycle. */
    int ppuOpsPerCycle = 4;
};

/**
 * One vertex's work at one layer (gather + combine + activate).
 */
struct VertexTask
{
    VertexId vertex = 0;
    OpCount macs = 0;          ///< Gather + combination MACs.
    OpCount postOps = 0;       ///< Activations / element-wise ops.
    ByteCount inputBytes = 0;  ///< Features staged into the local
                               ///< buffer for this task.
    bool reuseHit = false;     ///< Inputs arrive via the reuse FIFO.
};

/**
 * Outcome of executing one phase on one tile.
 */
struct TileResult
{
    Cycle cycles = 0;          ///< Phase makespan.
    Cycle macBusyCycles = 0;   ///< Sum over PEs of busy cycles.
    Cycle stallCycles = 0;     ///< Sum over PEs of refill stalls.
    Cycle ppuCycles = 0;       ///< PPU drain time (overlapped).
    double macUtilization = 0.0;
    ByteCount localBufferTraffic = 0;
    ByteCount distBufferTraffic = 0;
    ByteCount reuseFifoTraffic = 0;
};

/**
 * Executes work phases on one tile.
 */
class TileModel
{
  public:
    explicit TileModel(const TileConfig &config = {});

    /**
     * Schedule a set of vertex tasks onto the PE array
     * (longest-task-first onto the earliest-free PE) and account for
     * refill stalls and PPU drain.
     */
    TileResult executePhase(std::vector<VertexTask> tasks) const;

    /**
     * Uniform-task convenience (the RNN phase: every vertex costs the
     * same).
     */
    TileResult executeUniformPhase(std::size_t num_tasks,
                                   OpCount macs_per_task,
                                   OpCount post_ops_per_task,
                                   ByteCount input_bytes_per_task)
        const;

    const TileConfig &config() const { return config_; }

  private:
    TileConfig config_;
};

} // namespace ditile::sim

#endif // DITILE_SIM_TILE_MODEL_HH
