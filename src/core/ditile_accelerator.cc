/**
 * @file
 * DiTileAccelerator implementation.
 */

#include "core/ditile_accelerator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/trace.hh"
#include "core/plan_batch.hh"
#include "sim/engine.hh"

namespace ditile::core {

DiTileOptions
DiTileOptions::fromVariant(const std::string &variant)
{
    DiTileOptions o;
    if (variant == "DiTile-DGNN" || variant == "full") {
        // all on
    } else if (variant == "NoPs") {
        o.parallelismStrategy = false;
    } else if (variant == "NoWos") {
        o.workloadBalance = false;
    } else if (variant == "NoRa") {
        o.reconfigurableNoc = false;
    } else if (variant == "OnlyPs") {
        o.workloadBalance = false;
        o.reconfigurableNoc = false;
    } else if (variant == "OnlyWos") {
        o.parallelismStrategy = false;
        o.reconfigurableNoc = false;
    } else if (variant == "OnlyRa") {
        o.parallelismStrategy = false;
        o.workloadBalance = false;
    } else {
        DITILE_FATAL("unknown DiTile variant '", variant, "'");
    }
    return o;
}

DiTileAccelerator::DiTileAccelerator(sim::AcceleratorConfig hw,
                                     DiTileOptions options)
    : hw_(hw), options_(options)
{
}

std::string
DiTileAccelerator::name() const
{
    if (options_.parallelismStrategy && options_.workloadBalance &&
        options_.reconfigurableNoc) {
        return "DiTile-DGNN";
    }
    std::string n = "DiTile";
    n += options_.parallelismStrategy ? "+Ps" : "-Ps";
    n += options_.workloadBalance ? "+Wos" : "-Wos";
    n += options_.reconfigurableNoc ? "+Ra" : "-Ra";
    return n;
}

void
DiTileAccelerator::prepare(const graph::DynamicGraph &dg,
                           const model::DgnnConfig &model_config,
                           sim::AcceleratorConfig &hw,
                           sim::MappingSpec &mapping,
                           sim::EngineOptions &engine_options,
                           SharedFrontEnd *shared)
{
    Tracer &tracer = Tracer::global();
    const bool obs_trace = tracer.traceEnabled();
    const std::uint64_t plan_track =
        Tracer::trackBase() + Tracer::kPlanTrack;
    // Plan-stage spans live on a step clock (one step per sub-stage);
    // prepare() is serial per run, so the order is deterministic.
    auto planSpan = [&](const std::string &nm, TraceEvent ev) {
        if (!obs_trace)
            return;
        ev.cat = "plan";
        ev.name = nm;
        ev.track = plan_track;
        ev.ts = tracer.nextStep(plan_track);
        ev.dur = 1;
        tracer.record(std::move(ev));
    };

    // Step (2): per-vertex workload labels. A shared front end has
    // already built them for this graph (or builds them now, once
    // for the whole batch); the loads are a pure function of
    // (graph, layers), so both paths yield bitwise-equal labels.
    std::vector<double> own_loads;
    if (shared == nullptr)
        own_loads = workloadUnit_.computeLoads(dg, model_config);
    const std::vector<double> &loads = shared != nullptr
        ? shared->loads(dg, model_config)
        : own_loads;
    {
        TraceEvent ev;
        ev.addArg("vertices", static_cast<long long>(dg.numVertices()))
            .addArg("snapshots",
                    static_cast<long long>(dg.numSnapshots()));
        planSpan("workload-loads", std::move(ev));
    }

    // Step (3): Algorithm 1 — tiling factor + parallel factors,
    // likewise memoized per batch by the shared front end.
    lastPlan_ = shared != nullptr
        ? shared->strategy(dg, model_config, hw_,
                           options_.parallelismStrategy)
        : strategyAdjuster_.adjust(dg, model_config, hw_,
                                   options_.parallelismStrategy);
    {
        TraceEvent ev;
        ev.addArg("tiling_factor", static_cast<long long>(
                      lastPlan_.tiling.tilingFactor))
            .addArg("snapshot_groups", static_cast<long long>(
                        lastPlan_.parallelism.snapshotGroups))
            .addArg("vertex_parts", static_cast<long long>(
                        lastPlan_.parallelism.vertexParts));
        planSpan("alg1-tiling", std::move(ev));
    }

    // Steps (4)-(6): Algorithm 2 — the BDW mapping.
    lastMapping_ = workloadGenerator_.generate(
        dg, loads, lastPlan_, hw_, options_.workloadBalance);
    {
        TraceEvent ev;
        ev.addArg("groups", static_cast<long long>(
                      lastMapping_.groups.size()))
            .addArg("imbalance_permille", static_cast<long long>(
                        lastMapping_.imbalance * 1000.0));
        planSpan("alg2-bdw", std::move(ev));
    }

    // Steps (8)-(9): interconnect mode.
    const auto reconfig =
        reconfigurationUnit_.configure(options_.reconfigurableNoc);
    {
        TraceEvent ev;
        ev.addArg("topology",
                  std::string(noc::topologyKindName(reconfig.topology)))
            .addArg("reconfig_events_per_snapshot",
                    static_cast<long long>(
                        reconfig.reconfigEventsPerSnapshot));
        planSpan("relink-config", std::move(ev));
    }
    if (tracer.metricsEnabled()) {
        tracer.addMetric("plan.prepares", 1);
        tracer.addMetric("plan.tiling_factor_sum",
                         lastPlan_.tiling.tilingFactor);
    }
    hw = hw_;
    hw.noc.topology = reconfig.topology;

    // Step (7): redundant-free execution policy feeding the engine.
    engine_options = sim::EngineOptions{};
    engine_options.algo = model::AlgoKind::DiTileAlg;
    // Access-minimizing tiling forms subgraphs around connectivity;
    // without the parallelism strategy the subgraphs respect no
    // locality (the adjuster already doubled the tiling factor).
    engine_options.accounting.crossFetchFraction =
        lastPlan_.tiling.crossFetchFraction(
            options_.parallelismStrategy
                ? tiling::kOptimizedTilingLocality : 1.0);
    engine_options.reuseFifoForwarding = true;
    engine_options.detailedTileTiming = options_.detailedTileTiming;
    engine_options.adaptiveRelink = options_.reconfigurableNoc;
    engine_options.reconfigEventsPerSnapshot =
        reconfig.reconfigEventsPerSnapshot;
    // Uneven load skews the distributed-buffer occupancy: the hot
    // tiles overflow and re-fetch, so off-chip traffic grows with the
    // partition imbalance (paper §7.3's "uneven data distribution ...
    // leading to increased DRAM access").
    engine_options.dramTrafficScale = std::min(
        1.25, 1.0 + 0.08 * (lastMapping_.imbalance - 1.0));

    mapping = sim::MappingSpec{};
    mapping.rowPartition = lastMapping_.rowPartition;
    mapping.snapshotColumn = lastMapping_.snapshotColumn;
}

sim::ExecutionPlan
DiTileAccelerator::plan(const graph::DynamicGraph &dg,
                        const model::DgnnConfig &model_config,
                        sim::PlanCache *cache)
{
    return plan(dg, model_config, cache, nullptr);
}

sim::ExecutionPlan
DiTileAccelerator::plan(const graph::DynamicGraph &dg,
                        const model::DgnnConfig &model_config,
                        sim::PlanCache *cache, SharedFrontEnd *shared)
{
    sim::AcceleratorConfig hw;
    sim::MappingSpec mapping;
    sim::EngineOptions engine_options;
    prepare(dg, model_config, hw, mapping, engine_options, shared);
    sim::ExecutionPlan plan = sim::buildEnginePlan(
        dg, model_config, hw, mapping, engine_options, name(), cache);
    plan.parallel = lastPlan_;
    plan.groups = lastMapping_.groups;
    return plan;
}

sim::TrainingResult
DiTileAccelerator::runTraining(const graph::DynamicGraph &dg,
                               const model::DgnnConfig &model_config)
{
    sim::AcceleratorConfig hw;
    sim::MappingSpec mapping;
    sim::EngineOptions engine_options;
    prepare(dg, model_config, hw, mapping, engine_options);
    return sim::runTrainingIteration(dg, model_config, hw, mapping,
                                     engine_options, name());
}

} // namespace ditile::core
