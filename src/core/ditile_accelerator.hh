/**
 * @file
 * DiTile-DGNN: the paper's accelerator (public façade).
 *
 * Composes the Figure-5 pipeline: workload computation ->
 * parallelization strategy adjustment (Algorithm 1) -> balanced and
 * dynamic workload generation (Algorithm 2) -> redundant-free
 * execution planning -> NoC reconfiguration -> execution on the
 * reconfigurable distributed tile array. The three contribution
 * toggles drive the Figure-11(b) ablation variants.
 */

#ifndef DITILE_CORE_DITILE_ACCELERATOR_HH
#define DITILE_CORE_DITILE_ACCELERATOR_HH

#include <string>

#include "core/units.hh"
#include "sim/accelerator.hh"
#include "sim/baselines.hh"
#include "sim/training_engine.hh"

namespace ditile::core {

class SharedFrontEnd;

/**
 * Contribution toggles (all on == the full DiTile-DGNN).
 */
struct DiTileOptions
{
    bool parallelismStrategy = true;  ///< Algorithm 1 (Ps in Fig. 11b).
    bool workloadBalance = true;      ///< Algorithm 2 (Wos in Fig. 11b).
    bool reconfigurableNoc = true;    ///< Re-Link array (Ra in Fig. 11b).

    /** Time compute with the PE-level tile model (slower, finer). */
    bool detailedTileTiming = false;

    /** The six ablation variants plus the full design, by name. */
    static DiTileOptions fromVariant(const std::string &variant);
};

/**
 * The DiTile-DGNN accelerator model.
 */
class DiTileAccelerator : public sim::Accelerator
{
  public:
    explicit DiTileAccelerator(
        sim::AcceleratorConfig hw = sim::AcceleratorConfig::defaults(),
        DiTileOptions options = {});

    std::string name() const override;

    /**
     * Runs the full Figure-5 front end (workload computation,
     * Algorithm 1, Algorithm 2, execution planning, NoC mode) and
     * packages its outputs as one ExecutionPlan; run() (inherited)
     * replays it.
     */
    sim::ExecutionPlan plan(const graph::DynamicGraph &dg,
                            const model::DgnnConfig &model_config,
                            sim::PlanCache *cache = nullptr) override;

    /**
     * Same plan, drawing the graph-determined front-end prefix
     * (workload loads + Algorithm 1) from a SharedFrontEnd so a
     * batch of runs over one graph builds it once. Bit-identical to
     * plan(dg, model_config, cache); shared may be null.
     */
    sim::ExecutionPlan plan(const graph::DynamicGraph &dg,
                            const model::DgnnConfig &model_config,
                            sim::PlanCache *cache,
                            SharedFrontEnd *shared);

    /**
     * Simulate one training iteration (paper §4.1's extension): the
     * same Algorithm-1/2 front end, plus backward sweep, gradient
     * all-reduce, and optimizer update.
     */
    sim::TrainingResult runTraining(
        const graph::DynamicGraph &dg,
        const model::DgnnConfig &model_config);

    /** Algorithm-1 output of the most recent run (Fig. 10 inputs). */
    const tiling::ParallelPlan &lastPlan() const { return lastPlan_; }

    /** BDW mapping of the most recent run. */
    const BalancedWorkloadGenerator::Output &lastMapping() const
    {
        return lastMapping_;
    }

    const DiTileOptions &options() const { return options_; }
    const sim::AcceleratorConfig &hardware() const { return hw_; }

  private:
    /**
     * Runs the Figure-5 front end and emits the engine inputs. A
     * non-null shared front end supplies the loads and Algorithm-1
     * prefix (built once per batch); the Alg-2/Re-Link tail always
     * runs per variant.
     */
    void prepare(const graph::DynamicGraph &dg,
                 const model::DgnnConfig &model_config,
                 sim::AcceleratorConfig &hw, sim::MappingSpec &mapping,
                 sim::EngineOptions &engine_options,
                 SharedFrontEnd *shared = nullptr);

    sim::AcceleratorConfig hw_;
    DiTileOptions options_;
    WorkloadComputationUnit workloadUnit_;
    ParallelizationStrategyAdjuster strategyAdjuster_;
    BalancedWorkloadGenerator workloadGenerator_;
    ReconfigurationUnit reconfigurationUnit_;
    tiling::ParallelPlan lastPlan_;
    BalancedWorkloadGenerator::Output lastMapping_;
};

} // namespace ditile::core

#endif // DITILE_CORE_DITILE_ACCELERATOR_HH
