/**
 * @file
 * Front-end unit implementations.
 */

#include "core/units.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "tiling/subgraph_former.hh"

namespace ditile::core {

namespace {

int
residentDims(const graph::DynamicGraph &dg,
             const model::DgnnConfig &model_config)
{
    int dims = dg.featureDim();
    for (int d : model_config.gcnDims)
        dims += d;
    dims += 2 * model_config.lstmHidden;
    return dims;
}

} // namespace

tiling::ParallelPlan
ParallelizationStrategyAdjuster::adjust(
    const graph::DynamicGraph &dg, const model::DgnnConfig &model_config,
    const sim::AcceleratorConfig &hw, bool optimize) const
{
    const auto app = tiling::ApplicationFeatures::fromGraph(
        dg, model_config.numGcnLayers(), residentDims(dg, model_config),
        model_config.bytesPerValue);
    tiling::HardwareFeatures thw;
    thw.totalTiles = hw.totalTiles();
    thw.distributedBufferBytes = hw.distBufferBytes;

    if (optimize) {
        auto plan = tiling::optimizeAll(app, thw);
        // Form the subgraphs for real on the first snapshot and use
        // the measured cross-fetch fraction instead of the analytical
        // locality estimate.
        plan.tiling.measuredCross = tiling::formSubgraphs(
            dg.snapshot(0), plan.tiling.tilingFactor)
            .crossAdjacencyFraction;
        return plan;
    }

    // Naive static strategy: tiling only to fit the buffer with
    // fragmented subgraphs (2x the optimal factor), one snapshot per
    // column group, all rows as vertex parts.
    tiling::ParallelPlan plan;
    plan.tiling = tiling::optimizeTiling(app, thw);
    plan.tiling.tilingFactor *= 2;
    plan.tiling.dramAccessUnits =
        tiling::dramAccessModel(app, plan.tiling.tilingFactor);
    double lower = 0.0;
    for (double v : app.vertices)
        lower += v;
    plan.tiling.refetchFactor = lower > 0.0
        ? std::max(1.0, plan.tiling.dramAccessUnits / lower) : 1.0;
    plan.tiling.avgSubgraphVertices =
        app.avgVertices() / plan.tiling.tilingFactor;
    plan.tiling.avgSubgraphEdges =
        app.avgEdges() / plan.tiling.tilingFactor;

    const int dim = tiling::gridDim(thw);
    auto &par = plan.parallelism;
    par.snapshotGroups = std::min<int>(dim,
        std::max<SnapshotId>(1, dg.numSnapshots()));
    par.vertexParts = dim;
    par.snapshotsPerGroup = ceilDiv<int>(
        std::max<SnapshotId>(1, dg.numSnapshots()), par.snapshotGroups);
    par.verticesPerPart = ceilDiv<int>(
        std::max(1, static_cast<int>(plan.tiling.avgSubgraphVertices)),
        par.vertexParts);
    par.tcomm = tiling::temporalComm(app, plan.tiling.tilingFactor,
                                     par.snapshotGroups);
    par.rfscomm = tiling::redundancyFreeSpatialComm(
        app, plan.tiling.tilingFactor, par.vertexParts);
    par.recomm = tiling::reuseComm(app, plan.tiling.tilingFactor,
                                   par.snapshotGroups);
    par.totalCommUnits = par.tcomm + par.rfscomm + par.recomm;
    return plan;
}

BalancedWorkloadGenerator::Output
BalancedWorkloadGenerator::generate(const graph::DynamicGraph &dg,
                                    const std::vector<double> &loads,
                                    const tiling::ParallelPlan &plan,
                                    const sim::AcceleratorConfig &hw,
                                    bool balance) const
{
    Output out;
    const int parts = clamp(plan.parallelism.vertexParts, 1,
                            hw.tileRows);
    if (balance) {
        out.rowPartition = workload::balancedPartition(loads, parts);
    } else {
        out.rowPartition = graph::VertexPartition::contiguous(
            dg.numVertices(), parts);
    }
    out.imbalance = out.rowPartition.imbalance(loads);

    // Snapshot -> column: Gs groups laid left-to-right, each owning a
    // contiguous band of columns; snapshots inside a group rotate over
    // the band so consecutive snapshots pipeline on neighbouring tiles.
    const int groups = clamp(plan.parallelism.snapshotGroups, 1,
                             hw.tileCols);
    const int band = std::max(1, hw.tileCols / groups);
    const SnapshotId per_group = ceilDiv<SnapshotId>(
        std::max<SnapshotId>(1, dg.numSnapshots()),
        static_cast<SnapshotId>(groups));
    out.snapshotColumn.resize(
        static_cast<std::size_t>(dg.numSnapshots()));
    for (SnapshotId t = 0; t < dg.numSnapshots(); ++t) {
        const int g = static_cast<int>(t / per_group);
        const int slot = static_cast<int>(t % per_group) % band;
        out.snapshotColumn[static_cast<std::size_t>(t)] =
            std::min(hw.tileCols - 1, g * band + slot);
    }

    out.groups = workload::splitGroups(dg.numSnapshots(), groups,
                                       parts);
    return out;
}

ReconfigurationUnit::Output
ReconfigurationUnit::configure(bool reconfigurable) const
{
    Output out;
    if (reconfigurable) {
        out.topology = noc::TopologyKind::Reconfigurable;
        // Two Re-Link mode switches per snapshot: one entering the
        // irregular spatial (GNN) phase, one entering the regular
        // temporal/reuse (RNN boundary) phase.
        out.reconfigEventsPerSnapshot = 2;
    } else {
        out.topology = noc::TopologyKind::Mesh;
        out.reconfigEventsPerSnapshot = 0;
    }
    return out;
}

} // namespace ditile::core
