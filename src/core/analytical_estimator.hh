/**
 * @file
 * Closed-form predictions of DiTile's off-chip and on-chip traffic
 * (the "Alg-DA" / "Alg-OT" series of Figure 10).
 *
 * The strategy adjuster optimizes with the relative Eq. 5-16 models;
 * for absolute predictions the paper compares an analytical estimate
 * against the simulated traffic and reports the simulation exceeding
 * the estimate by ~5% (DRAM) and ~9% (on-chip), attributing the gap to
 * the model's uniform-sparsity and uniform-snapshot assumptions. This
 * estimator makes exactly those assumptions: every subgraph shares the
 * average degree, every snapshot shares the average vertex/edge counts
 * and dissimilarity, and affected sets grow by the mean degree per
 * GCN layer.
 */

#ifndef DITILE_CORE_ANALYTICAL_ESTIMATOR_HH
#define DITILE_CORE_ANALYTICAL_ESTIMATOR_HH

#include "graph/dynamic_graph.hh"
#include "model/dgnn_config.hh"
#include "tiling/optimizer.hh"

namespace ditile::core {

/**
 * Predicted traffic volumes, bytes.
 */
struct AnalyticalEstimate
{
    double dramBytes = 0.0;   ///< Alg-DA: total off-chip traffic.
    double onChipBytes = 0.0; ///< Alg-OT: total inter-tile payload.
};

/**
 * Predict DiTile-DGNN's traffic under the statistical assumptions
 * described above.
 *
 * @param plan Algorithm-1 output (tiling factor, refetch, Gs/Gv).
 * @param column_boundaries Number of consecutive-snapshot pairs whose
 *        columns differ in the BDW mapping (temporal/reuse transfers
 *        happen only there).
 */
AnalyticalEstimate estimateTraffic(const graph::DynamicGraph &dg,
                                   const model::DgnnConfig &model_config,
                                   const tiling::ParallelPlan &plan,
                                   int column_boundaries);

} // namespace ditile::core

#endif // DITILE_CORE_ANALYTICAL_ESTIMATOR_HH
