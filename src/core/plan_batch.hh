/**
 * @file
 * Batch plan construction: share the planner front end across every
 * run that plans the same dynamic graph (ROADMAP item 5).
 *
 * The Figure-5 front end splits cleanly into a graph-determined
 * prefix and a variant-determined tail. Step (2)'s per-vertex loads
 * depend only on (graph, layer count), and step (3)'s Algorithm-1
 * search only on (graph, model config, tile budget, buffer size,
 * optimize flag) — neither sees the ablation toggles that
 * distinguish fleet members, and sweeps re-plan the same structure
 * hash for every grid point that shares a graph. Steps (4)-(9)
 * (Algorithm 2's sort + deal, the Re-Link mode, the engine-policy
 * assembly) are the per-variant tail.
 *
 * SharedFrontEnd memoizes the prefix: one instance serves one
 * (dynamic graph, model config) pair, lazily building the loads and
 * each distinct Algorithm-1 variant on first use. Both cached
 * results come from the exact functions the unshared path calls, so
 * plans built through a SharedFrontEnd are bit-identical to per-run
 * planning — the --batch-plan=off escape hatch diffs the two
 * byte-for-byte in CI.
 *
 * Not thread-safe by design: a batch plans its group serially (the
 * sweep parallelizes across groups, not within one).
 */

#ifndef DITILE_CORE_PLAN_BATCH_HH
#define DITILE_CORE_PLAN_BATCH_HH

#include <deque>
#include <memory>
#include <vector>

#include "core/units.hh"
#include "sim/accelerator.hh"

namespace ditile::core {

/** Memoized graph-determined planner prefix (loads + Algorithm 1). */
class SharedFrontEnd
{
  public:
    /**
     * Step (2) loads for the batch's graph; built on first use.
     * Every call must pass the same graph (asserted via the cached
     * structure hash) and a config with the same GCN layer count.
     */
    const std::vector<double> &
    loads(const graph::DynamicGraph &dg,
          const model::DgnnConfig &model_config);

    /**
     * Step (3) Algorithm-1 output; one cached entry per distinct
     * (optimize flag, tile budget, buffer size) — the only hardware
     * features the adjuster reads.
     */
    const tiling::ParallelPlan &
    strategy(const graph::DynamicGraph &dg,
             const model::DgnnConfig &model_config,
             const sim::AcceleratorConfig &hw, bool optimize);

  private:
    void bindGraph(const graph::DynamicGraph &dg);

    struct StrategyEntry
    {
        bool optimize = false;
        int totalTiles = 0;
        ByteCount distBufferBytes = 0;
        tiling::ParallelPlan plan;
    };

    bool bound_ = false;
    std::uint64_t graphHash_ = 0;
    int loadLayers_ = -1;
    std::vector<double> loads_;
    // Deque: returned references stay valid as entries accumulate.
    std::deque<StrategyEntry> strategies_;
    WorkloadComputationUnit workloadUnit_;
    ParallelizationStrategyAdjuster strategyAdjuster_;
};

/**
 * Plan every fleet member against one graph, sharing the front end
 * across the DiTile variants (baselines plan independently — their
 * front ends are their own). Plans come back in fleet order and are
 * bit-identical to calling accel->plan() per member.
 */
std::vector<sim::ExecutionPlan>
planBatch(const graph::DynamicGraph &dg,
          const model::DgnnConfig &model_config,
          const std::vector<std::unique_ptr<sim::Accelerator>> &fleet,
          sim::PlanCache *cache);

} // namespace ditile::core

#endif // DITILE_CORE_PLAN_BATCH_HH
