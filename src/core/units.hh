/**
 * @file
 * The DiTile-DGNN front-end units of Figure 5 (a).
 *
 * The accelerator overview names four pre-execution blocks: the
 * Workload Computation Unit (per-vertex load labels), the
 * Parallelization Strategy Adjuster (Algorithm 1), the Balanced and
 * Dynamic Workload Generator (Algorithm 2 + BDW reservoir), and the
 * Reconfiguration Unit (NoC mode selection). Each is a small class
 * here so the orchestration in DiTileAccelerator::run() reads like the
 * paper's step (1)-(9) walkthrough.
 */

#ifndef DITILE_CORE_UNITS_HH
#define DITILE_CORE_UNITS_HH

#include <vector>

#include "graph/dynamic_graph.hh"
#include "graph/partition.hh"
#include "model/dgnn_config.hh"
#include "noc/message.hh"
#include "sim/accel_config.hh"
#include "tiling/optimizer.hh"
#include "workload/balance.hh"

namespace ditile::core {

/**
 * Step (2): computes the per-vertex workload labels for the whole
 * dynamic graph (Algorithm 2 lines 1-8 / Eq. 17).
 */
class WorkloadComputationUnit
{
  public:
    std::vector<double>
    computeLoads(const graph::DynamicGraph &dg,
                 const model::DgnnConfig &model_config) const
    {
        return workload::computeVertexLoads(
            dg, model_config.numGcnLayers());
    }
};

/**
 * Step (3): derives the tiling factor and parallel factors from the
 * application and hardware features (Algorithm 1).
 */
class ParallelizationStrategyAdjuster
{
  public:
    /**
     * @param optimize Run the full Algorithm 1 search; when false the
     *        adjuster returns the naive static strategy (per-snapshot
     *        temporal spread, all rows, fragmented tiling) used by the
     *        NoPs ablation.
     */
    tiling::ParallelPlan
    adjust(const graph::DynamicGraph &dg,
           const model::DgnnConfig &model_config,
           const sim::AcceleratorConfig &hw, bool optimize) const;
};

/**
 * Steps (4)-(6): turns loads + parallel factors into the balanced and
 * dynamic workload (BDW) mapping the tile array consumes.
 */
class BalancedWorkloadGenerator
{
  public:
    struct Output
    {
        graph::VertexPartition rowPartition;
        std::vector<int> snapshotColumn;
        std::vector<workload::BalancedGroup> groups;
        double imbalance = 1.0;
    };

    /**
     * @param balance Apply Algorithm 2's sort + round-robin; when
     *        false vertices are placed contiguously (NoWos ablation).
     */
    Output
    generate(const graph::DynamicGraph &dg,
             const std::vector<double> &loads,
             const tiling::ParallelPlan &plan,
             const sim::AcceleratorConfig &hw, bool balance) const;
};

/**
 * Step (9): selects the interconnect operating mode and accounts for
 * the reconfiguration events the Re-Link switches consume.
 */
class ReconfigurationUnit
{
  public:
    struct Output
    {
        noc::TopologyKind topology = noc::TopologyKind::Reconfigurable;
        std::uint64_t reconfigEventsPerSnapshot = 0;
    };

    /** @param reconfigurable False selects the fixed mesh (NoRa). */
    Output configure(bool reconfigurable) const;
};

} // namespace ditile::core

#endif // DITILE_CORE_UNITS_HH
