/**
 * @file
 * Analytical traffic estimator implementation.
 *
 * Mirrors the accounting rules of model/accounting.cc and the message
 * construction of sim/engine.cc, but with every exact per-vertex
 * quantity replaced by its statistical expectation: affected sets grow
 * by the mean influence factor (1 + kappa) per layer, neighborhoods by
 * the mean degree, and every subgraph shares the average sparsity.
 * Keeping the two in deliberate correspondence is what makes the
 * Figure-10 comparison meaningful: the gap between this estimate and
 * the simulation is exactly the degree/sparsity variance the model
 * ignores.
 */

#include "core/analytical_estimator.hh"

#include <algorithm>
#include <cmath>

namespace ditile::core {

namespace {

/** Mean influence-propagation count per changed vertex per layer
 *  (must match IncrementalPlanner's default kappa). */
constexpr double kKappa = 1.2;

} // namespace

AnalyticalEstimate
estimateTraffic(const graph::DynamicGraph &dg,
                const model::DgnnConfig &model_config,
                const tiling::ParallelPlan &plan, int column_boundaries)
{
    const double v = dg.numVertices();
    const double adj = dg.avgEdges() * 2.0; // adjacency entries.
    const double degree = v > 0.0 ? adj / v : 0.0;

    // Changed vertices are endpoints of changed edges, so their
    // degrees follow the edge-biased distribution: E[d^2] / E[d].
    // Using the plain mean here is what made early estimates low by
    // 2x on skewed graphs.
    double deg_sq_sum = 0.0;
    double deg_sum = 0.0;
    for (SnapshotId t = 0; t < dg.numSnapshots(); ++t) {
        const auto &g = dg.snapshot(t);
        for (VertexId u = 0; u < g.numVertices(); ++u) {
            const double d = g.degree(u);
            deg_sq_sum += d * d;
            deg_sum += d;
        }
    }
    const double fully_biased =
        deg_sum > 0.0 ? deg_sq_sum / deg_sum : degree;
    // Only the first hop is fully edge-biased; each further hop mixes
    // back toward the plain mean. A fixed hop-weighted blend (0.6
    // toward the biased value, in log space) captures the average mix
    // across the L layers.
    const double biased_degree = degree > 0.0
        ? degree * std::pow(fully_biased / degree, 0.6) : fully_biased;
    const double dis = dg.avgDissimilarity();
    const int layers = model_config.numGcnLayers();
    const double bpv = model_config.bytesPerValue;
    const double t_count = dg.numSnapshots();
    const double feature_dim = dg.featureDim();
    const double z_dim = model_config.gnnOutputDim();
    const double hidden = model_config.lstmHidden;
    const double cross = plan.tiling.crossFetchFraction(
        tiling::kOptimizedTilingLocality);

    // Damped affected sets: seeds recruit ~kappa downstream changes
    // per layer; neighborhoods grow by the mean degree but saturate.
    const double seeds = dis * v;
    auto set_at = [&](int l) {
        return std::min(v, seeds * std::pow(1.0 + kKappa, l));
    };
    auto gathers_at = [&](int l) {
        return std::min(adj, set_at(l) * biased_degree);
    };
    auto inputs_at = [&](int l) {
        return std::min(v, set_at(l) * (1.0 + biased_degree));
    };
    const double changed = set_at(layers - 1);

    AnalyticalEstimate est;

    // ---- Off-chip (mirrors countSnapshotDram). ----
    double weight_values = 0.0;
    double in_dim = feature_dim;
    for (int l = 0; l < layers; ++l) {
        weight_values += in_dim * model_config.gcnDims[
            static_cast<std::size_t>(l)];
        in_dim = model_config.gcnDims[static_cast<std::size_t>(l)];
    }
    weight_values += 4.0 * z_dim * hidden + 4.0 * hidden * hidden;
    est.dramBytes += t_count * weight_values * bpv; // weights/snapshot.

    // Snapshot 0: full recompute. Inputs follow Eq. 6: every feature
    // once plus one refetch per cross-subgraph gather.
    est.dramBytes += adj * 4.0 + v * 4.0;              // adjacency.
    est.dramBytes += (v + adj * cross) * feature_dim * bpv;
    est.dramBytes += v * z_dim * bpv + 4.0 * v * hidden * bpv; // out.
    for (int l = 1; l < layers; ++l) {
        const double dim_prev = model_config.gcnDims[
            static_cast<std::size_t>(l - 1)];
        est.dramBytes += 0.15 * (v + v + adj * cross) * dim_prev * bpv;
    }

    // Snapshots 1..T-1: incremental.
    for (int t = 1; t < static_cast<int>(t_count); ++t) {
        est.dramBytes += dis * adj * 0.5 * 8.0; // delta records.
        est.dramBytes += (inputs_at(0) + gathers_at(0) * cross) *
            feature_dim * bpv;
        for (int l = 1; l < layers; ++l) {
            const double dim_prev = model_config.gcnDims[
                static_cast<std::size_t>(l - 1)];
            est.dramBytes += 0.15 *
                (set_at(l - 1) + inputs_at(l) +
                 gathers_at(l) * cross) * dim_prev * bpv;
        }
        est.dramBytes += changed * z_dim * bpv +
            4.0 * changed * hidden * bpv;
    }

    // ---- On-chip (mirrors the engine's message construction). ----
    const int parts = std::max(1, plan.parallelism.vertexParts);
    const double row_cross = 1.0 - 1.0 / static_cast<double>(parts);

    // Spatial gathers, snapshot 0 (full) then incremental.
    double dim_l = feature_dim;
    for (int l = 0; l < layers; ++l) {
        est.onChipBytes += adj * row_cross * dim_l * bpv;
        dim_l = model_config.gcnDims[static_cast<std::size_t>(l)];
    }
    for (int t = 1; t < static_cast<int>(t_count); ++t) {
        dim_l = feature_dim;
        for (int l = 0; l < layers; ++l) {
            est.onChipBytes += gathers_at(l) * row_cross * dim_l * bpv;
            dim_l = model_config.gcnDims[static_cast<std::size_t>(l)];
        }
    }

    // Temporal + reuse transfers at the column boundaries. The dirty
    // hidden-state set accumulates across snapshots (selective RNN).
    if (column_boundaries > 0 && t_count > 1) {
        const double f = std::min(1.0, changed / v);
        double dirty_sum = 0.0;
        for (int t = 1; t < static_cast<int>(t_count); ++t)
            dirty_sum += v * (1.0 - std::pow(1.0 - f, t));
        const double avg_dirty = dirty_sum / (t_count - 1.0);
        est.onChipBytes += static_cast<double>(column_boundaries) *
            (avg_dirty * 2.0 * hidden * bpv +
             (v - changed) * (z_dim + hidden) * bpv);
    }
    return est;
}

} // namespace ditile::core
