/**
 * @file
 * SharedFrontEnd + planBatch implementation.
 */

#include "core/plan_batch.hh"

#include "common/logging.hh"
#include "core/ditile_accelerator.hh"

namespace ditile::core {

void
SharedFrontEnd::bindGraph(const graph::DynamicGraph &dg)
{
    const std::uint64_t h = graph::structureHash(dg);
    if (!bound_) {
        bound_ = true;
        graphHash_ = h;
        return;
    }
    DITILE_ASSERT(graphHash_ == h,
                  "SharedFrontEnd reused across different graphs");
}

const std::vector<double> &
SharedFrontEnd::loads(const graph::DynamicGraph &dg,
                      const model::DgnnConfig &model_config)
{
    bindGraph(dg);
    const int layers = model_config.numGcnLayers();
    if (loadLayers_ != layers) {
        DITILE_ASSERT(loadLayers_ < 0,
                      "SharedFrontEnd reused across model configs");
        loads_ = workloadUnit_.computeLoads(dg, model_config);
        loadLayers_ = layers;
    }
    return loads_;
}

const tiling::ParallelPlan &
SharedFrontEnd::strategy(const graph::DynamicGraph &dg,
                         const model::DgnnConfig &model_config,
                         const sim::AcceleratorConfig &hw,
                         bool optimize)
{
    bindGraph(dg);
    const int tiles = hw.totalTiles();
    for (const StrategyEntry &e : strategies_) {
        if (e.optimize == optimize && e.totalTiles == tiles &&
            e.distBufferBytes == hw.distBufferBytes) {
            return e.plan;
        }
    }
    StrategyEntry entry;
    entry.optimize = optimize;
    entry.totalTiles = tiles;
    entry.distBufferBytes = hw.distBufferBytes;
    entry.plan =
        strategyAdjuster_.adjust(dg, model_config, hw, optimize);
    strategies_.push_back(std::move(entry));
    return strategies_.back().plan;
}

std::vector<sim::ExecutionPlan>
planBatch(const graph::DynamicGraph &dg,
          const model::DgnnConfig &model_config,
          const std::vector<std::unique_ptr<sim::Accelerator>> &fleet,
          sim::PlanCache *cache)
{
    SharedFrontEnd shared;
    std::vector<sim::ExecutionPlan> plans;
    plans.reserve(fleet.size());
    for (const auto &accel : fleet) {
        if (auto *ditile =
                dynamic_cast<DiTileAccelerator *>(accel.get())) {
            plans.push_back(
                ditile->plan(dg, model_config, cache, &shared));
        } else {
            plans.push_back(accel->plan(dg, model_config, cache));
        }
    }
    return plans;
}

} // namespace ditile::core
