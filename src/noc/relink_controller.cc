/**
 * @file
 * Re-Link controller implementation.
 */

#include "noc/relink_controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ditile::noc {

RelinkController::RelinkController(int rows,
                                   std::vector<int> candidate_spans)
    : rows_(rows), candidates_(std::move(candidate_spans))
{
    DITILE_ASSERT(rows_ >= 1);
    if (std::find(candidates_.begin(), candidates_.end(), 1) ==
        candidates_.end()) {
        candidates_.push_back(1);
    }
    std::sort(candidates_.begin(), candidates_.end());
    candidates_.erase(std::unique(candidates_.begin(),
                                  candidates_.end()),
                      candidates_.end());
    DITILE_ASSERT(candidates_.front() >= 1);
}

int
RelinkController::stopsForDistance(int distance, int span)
{
    DITILE_ASSERT(distance >= 0 && span >= 1);
    if (distance == 0)
        return 0;
    // The ring stops every `span` hops; the final hop always stops.
    // Mirrors RingTopology's stop placement: intermediate stops at
    // multiples of span that are not the last hop, plus the arrival.
    return (distance - 1) / span + 1;
}

RelinkDecision
RelinkController::decide(const std::vector<int> &vertical_distances,
                         Cycle router_latency,
                         double stuck_open_fraction)
{
    const double stuck = std::clamp(stuck_open_fraction, 0.0, 1.0);
    RelinkDecision decision;
    decision.span = currentSpan_;

    // Nothing to route: keep the engaged configuration for free.
    const bool any_traffic = std::any_of(
        vertical_distances.begin(), vertical_distances.end(),
        [](int d) { return d > 0; });
    if (!any_traffic)
        return decision;

    double best = -1.0;
    for (int span : candidates_) {
        // Expected head latency per message: one cycle per hop plus
        // the router pipeline at every stop (the cut-through model in
        // network.cc makes serialization span-independent for equal
        // paths, so stops are the differentiator).
        double total = 0.0;
        std::size_t counted = 0;
        for (int d : vertical_distances) {
            if (d <= 0)
                continue;
            ++counted;
            // Columns with a stuck-open bypass run at span 1 no matter
            // what is engaged; weight their latency accordingly.
            const double stops = stuck *
                    static_cast<double>(stopsForDistance(d, 1)) +
                (1.0 - stuck) *
                    static_cast<double>(stopsForDistance(d, span));
            total += static_cast<double>(d) +
                stops * static_cast<double>(router_latency);
        }
        const double score = counted
            ? total / static_cast<double>(counted) : 0.0;
        if (best < 0.0 || score < best ||
            (score == best && span < decision.span)) {
            best = score;
            decision.span = span;
        }
    }
    decision.expectedLatency = std::max(0.0, best);

    if (decision.span != currentSpan_) {
        // One toggle per bypass segment along every vertical ring
        // whose configuration changes.
        const auto segments = static_cast<std::uint64_t>(
            std::max(1, rows_ / std::max(decision.span,
                                         currentSpan_)));
        decision.reconfigEvents = segments;
        totalEvents_ += segments;
        currentSpan_ = decision.span;
    }
    return decision;
}

} // namespace ditile::noc
