/**
 * @file
 * Network simulation implementation.
 */

#include "noc/network.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace ditile::noc {

namespace {

/** Serialization cycles for one message over one link. */
Cycle
serializationCycles(const NocConfig &config, ByteCount bytes)
{
    return ceilDiv<Cycle>(static_cast<Cycle>(bytes),
                          static_cast<Cycle>(config.linkBytesPerCycle));
}

} // namespace

StatSet
NocResult::toStats() const
{
    StatSet s;
    s.set("noc.makespan_cycles", static_cast<double>(makespan));
    s.set("noc.avg_latency_cycles", avgLatency);
    s.set("noc.messages", static_cast<double>(numMessages));
    s.set("noc.total_bytes", static_cast<double>(totalBytes));
    s.set("noc.hop_bytes", static_cast<double>(hopBytes));
    s.set("noc.router_bytes", static_cast<double>(routerBytes));
    s.set("noc.total_hops", static_cast<double>(totalHops));
    s.set("noc.router_stops", static_cast<double>(routerStops));
    s.set("noc.temporal_bytes",
          static_cast<double>(bytesByClass[
              static_cast<int>(TrafficClass::Temporal)]));
    s.set("noc.spatial_bytes",
          static_cast<double>(bytesByClass[
              static_cast<int>(TrafficClass::Spatial)]));
    s.set("noc.reuse_bytes",
          static_cast<double>(bytesByClass[
              static_cast<int>(TrafficClass::Reuse)]));
    s.set("noc.control_bytes",
          static_cast<double>(bytesByClass[
              static_cast<int>(TrafficClass::Control)]));
    s.set("noc.rerouted_messages", static_cast<double>(reroutedMessages));
    s.set("noc.retried_messages", static_cast<double>(retriedMessages));
    s.set("noc.retry_backoff_cycles",
          static_cast<double>(retryBackoffCycles));
    return s;
}

NocResult
simulateTraffic(const NocConfig &config, std::vector<Message> messages,
                const NocFaults *faults)
{
    auto topology = Topology::create(config);
    NocResult result;

    std::stable_sort(messages.begin(), messages.end(),
        [](const Message &a, const Message &b) {
            return a.injectCycle < b.injectCycle;
        });

    std::vector<Cycle> link_free(
        static_cast<std::size_t>(topology->numLinks()), 0);
    double latency_sum = 0.0;

    for (const Message &m : messages) {
        DITILE_ASSERT(m.src >= 0 && m.src < config.numTiles() &&
                      m.dst >= 0 && m.dst < config.numTiles(),
                      "message endpoints out of range");
        ++result.numMessages;
        result.totalBytes += m.bytes;
        result.bytesByClass[static_cast<int>(m.cls)] += m.bytes;

        Route rt;
        if (faults && !faults->empty()) {
            rt = topology->routeResilient(m.src, m.dst, m.cls, *faults);
        } else {
            rt.hops = topology->route(m.src, m.dst, m.cls);
        }
        const auto &hops = rt.hops;
        Cycle t = m.injectCycle;
        if (rt.rerouted)
            ++result.reroutedMessages;
        if (rt.degraded) {
            // No fault-free path exists: the sender retries with
            // bounded exponential backoff before forcing the transfer
            // through the degraded route.
            ++result.retriedMessages;
            Cycle backoff = 0;
            Cycle step = faults->retryBackoffCycles;
            for (int attempt = 0; attempt < faults->maxRetries;
                 ++attempt) {
                backoff += step;
                step *= 2;
            }
            result.retryBackoffCycles += backoff;
            t += backoff;
        }
        const Cycle ser = serializationCycles(config, m.bytes);
        // Links between router stops form one bypass segment: the
        // message serializes once over the whole segment (cut-through
        // across bypassed routers), so Re-Link bypasses save both the
        // router latency and the per-hop re-serialization.
        std::size_t seg_begin = 0;
        for (std::size_t h = 0; h < hops.size(); ++h) {
            result.hopBytes += m.bytes;
            ++result.totalHops;
            if (!hops[h].routerStop)
                continue;
            Cycle start = t;
            for (std::size_t k = seg_begin; k <= h; ++k) {
                start = std::max(start, link_free[
                    static_cast<std::size_t>(hops[k].link)]);
            }
            t = start + ser;
            for (std::size_t k = seg_begin; k <= h; ++k) {
                link_free[static_cast<std::size_t>(hops[k].link)] = t;
            }
            t += config.routerLatencyCycles;
            result.routerBytes += m.bytes;
            ++result.routerStops;
            seg_begin = h + 1;
        }
        latency_sum += static_cast<double>(t - m.injectCycle);
        result.makespan = std::max(result.makespan, t);
    }

    result.avgLatency = result.numMessages
        ? latency_sum / static_cast<double>(result.numMessages) : 0.0;
    return result;
}

Cycle
zeroLoadLatency(const NocConfig &config, const Message &message)
{
    auto topology = Topology::create(config);
    const auto hops = topology->route(message.src, message.dst,
                                      message.cls);
    const Cycle ser = serializationCycles(config, message.bytes);
    Cycle t = 0;
    for (const Hop &hop : hops) {
        if (hop.routerStop)
            t += ser + config.routerLatencyCycles;
    }
    return t;
}

} // namespace ditile::noc
