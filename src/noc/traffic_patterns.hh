/**
 * @file
 * Synthetic NoC traffic patterns.
 *
 * Standard interconnect-evaluation workloads (the style of Garnet's
 * synthetic-traffic mode): uniform random, transpose, hotspot,
 * neighbor, and the two DGNN-shaped patterns this design cares about —
 * column gather (spatial phase) and row shift (temporal/reuse phase).
 * Used by the micro benches and topology tests to characterize the
 * interconnects independently of any graph workload.
 */

#ifndef DITILE_NOC_TRAFFIC_PATTERNS_HH
#define DITILE_NOC_TRAFFIC_PATTERNS_HH

#include <vector>

#include "common/rng.hh"
#include "noc/message.hh"

namespace ditile::noc {

/** The supported synthetic patterns. */
enum class TrafficPattern
{
    UniformRandom, ///< Independent uniform src/dst pairs.
    Transpose,     ///< (r, c) -> (c, r).
    Hotspot,       ///< Everyone sends to one tile.
    Neighbor,      ///< Each tile to its east neighbor (wrapping).
    ColumnGather,  ///< Random pairs within each column (GNN spatial).
    RowShift,      ///< Each tile to the next column, same row
                   ///< (temporal/reuse boundary).
};

/** Display name. */
const char *trafficPatternName(TrafficPattern pattern);

/** All patterns, for sweeps. */
const std::vector<TrafficPattern> &allTrafficPatterns();

/**
 * Generate `count` messages of `bytes` each under a pattern on a
 * rows x cols grid. Deterministic in `rng`.
 */
std::vector<Message> generateTraffic(TrafficPattern pattern, int rows,
                                     int cols, std::size_t count,
                                     ByteCount bytes, Rng &rng);

} // namespace ditile::noc

#endif // DITILE_NOC_TRAFFIC_PATTERNS_HH
