/**
 * @file
 * Route computation for the four interconnect styles.
 *
 * A Topology converts (src tile, dst tile, traffic class) into an
 * ordered list of hops. Each hop names a directed link resource and
 * whether the message stops at the downstream router (Re-Link bypasses
 * traverse links without a router stop).
 */

#ifndef DITILE_NOC_TOPOLOGY_HH
#define DITILE_NOC_TOPOLOGY_HH

#include <algorithm>
#include <memory>
#include <vector>

#include "noc/message.hh"

namespace ditile::noc {

/** Dense identifier of a directed physical link. */
using LinkId = std::int32_t;

/** Direction encoding for grid link ids (mesh and ring fabrics). */
enum class GridDir { East = 0, West = 1, South = 2, North = 3 };

/** Dense id of `tile`'s outgoing grid link in direction `dir`. */
inline LinkId
gridLinkId(TileId tile, GridDir dir)
{
    return tile * 4 + static_cast<LinkId>(dir);
}

/**
 * Interconnect fault state for one communication phase: dead directed
 * links, per-column Re-Link bypass overrides (stuck bypass switches),
 * and the bounded-backoff retry policy applied when no fault-free
 * route exists.
 */
struct NocFaults
{
    /** Dead directed link ids, sorted ascending. */
    std::vector<LinkId> deadLinks;
    /**
     * Per-column vertical bypass span forced by a stuck switch
     * (0 = no override). Empty when no bypass faults are active.
     */
    std::vector<int> columnSpanOverride;
    /** Backoff charged per retry attempt on an unavoidable dead link. */
    Cycle retryBackoffCycles = 64;
    /** Retry attempts before the message is forced through degraded. */
    int maxRetries = 3;

    bool
    empty() const
    {
        return deadLinks.empty() && columnSpanOverride.empty();
    }

    bool
    linkDead(LinkId link) const
    {
        return std::binary_search(deadLinks.begin(), deadLinks.end(),
                                  link);
    }

    int
    spanOverride(int col) const
    {
        if (col < 0 ||
            static_cast<std::size_t>(col) >= columnSpanOverride.size())
            return 0;
        return columnSpanOverride[col];
    }
};

/**
 * One step of a route: traverse `link`; if `routerStop`, pay the
 * router pipeline latency at the downstream node.
 */
struct Hop
{
    LinkId link = 0;
    bool routerStop = true;
};

/**
 * A fault-aware route: the hops plus what it took to find them.
 * `rerouted` means a non-minimal path was chosen to dodge dead links;
 * `degraded` means every candidate path crosses a dead link and the
 * message must retry with backoff before being forced through.
 */
struct Route
{
    std::vector<Hop> hops;
    bool rerouted = false;
    bool degraded = false;
};

/**
 * Abstract route oracle for one interconnect style.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Hops from src to dst (empty if src == dst). */
    virtual std::vector<Hop> route(TileId src, TileId dst,
                                   TrafficClass cls) const = 0;

    /**
     * Fault-aware routing. The base implementation returns the
     * fault-free route and flags it degraded if it crosses a dead
     * link; grid topologies override it to reroute around faults.
     */
    virtual Route routeResilient(TileId src, TileId dst,
                                 TrafficClass cls,
                                 const NocFaults &faults) const;

    /** Number of directed link resources. */
    virtual LinkId numLinks() const = 0;

    /** Build the topology matching config.topology. */
    static std::unique_ptr<Topology> create(const NocConfig &config);
};

} // namespace ditile::noc

#endif // DITILE_NOC_TOPOLOGY_HH
