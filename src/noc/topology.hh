/**
 * @file
 * Route computation for the four interconnect styles.
 *
 * A Topology converts (src tile, dst tile, traffic class) into an
 * ordered list of hops. Each hop names a directed link resource and
 * whether the message stops at the downstream router (Re-Link bypasses
 * traverse links without a router stop).
 */

#ifndef DITILE_NOC_TOPOLOGY_HH
#define DITILE_NOC_TOPOLOGY_HH

#include <memory>
#include <vector>

#include "noc/message.hh"

namespace ditile::noc {

/** Dense identifier of a directed physical link. */
using LinkId = std::int32_t;

/**
 * One step of a route: traverse `link`; if `routerStop`, pay the
 * router pipeline latency at the downstream node.
 */
struct Hop
{
    LinkId link = 0;
    bool routerStop = true;
};

/**
 * Abstract route oracle for one interconnect style.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    /** Hops from src to dst (empty if src == dst). */
    virtual std::vector<Hop> route(TileId src, TileId dst,
                                   TrafficClass cls) const = 0;

    /** Number of directed link resources. */
    virtual LinkId numLinks() const = 0;

    /** Build the topology matching config.topology. */
    static std::unique_ptr<Topology> create(const NocConfig &config);
};

} // namespace ditile::noc

#endif // DITILE_NOC_TOPOLOGY_HH
