/**
 * @file
 * Cycle-stepped wormhole network model.
 *
 * The phase-level engine uses the fast segment-serialization model in
 * network.hh; this model is its ground truth for small
 * configurations: packets are decomposed into flits, the head flit
 * advances one link per cycle when the next link is free, and a
 * packet holds every link on its path from head-acquisition until its
 * tail drains — so head-of-line blocking chains, the phenomenon the
 * fast model approximates with FCFS link queues, emerge naturally.
 * Tests cross-validate the two models; studies that need flit-level
 * fidelity (e.g. Re-Link arbitration experiments) can use this one
 * directly.
 */

#ifndef DITILE_NOC_FLIT_NETWORK_HH
#define DITILE_NOC_FLIT_NETWORK_HH

#include <vector>

#include "noc/network.hh"

namespace ditile::noc {

/**
 * Flit-level parameters on top of the shared NocConfig.
 */
struct FlitConfig
{
    NocConfig noc;
    int flitBytes = 32;      ///< Payload per flit.
    Cycle maxCycles = 50'000'000; ///< Deadlock/runaway guard.
};

/**
 * Replay a message batch flit by flit.
 *
 * Uses the same Topology routes as the fast model. Arbitration is
 * oldest-first (by injection cycle, then batch order) each cycle.
 * Returns the same NocResult record so callers can compare models
 * directly.
 */
NocResult simulateFlitTraffic(const FlitConfig &config,
                              std::vector<Message> messages);

/** Analytic zero-load wormhole latency: hops + flits - 1 + stops. */
Cycle flitZeroLoadLatency(const FlitConfig &config,
                          const Message &message);

} // namespace ditile::noc

#endif // DITILE_NOC_FLIT_NETWORK_HH
