/**
 * @file
 * Inter-chip interconnect link model for multi-chip scale-out.
 *
 * A ChipCluster connects M DiTile chips with point-to-point serial
 * links (one egress link per chip, SerDes style). Like the on-chip
 * ring links (NocConfig), the link is parameterized by bandwidth and
 * latency; unlike them it also charges an explicit serialization cost:
 * payloads are framed into fixed-size packets, each paying a header,
 * and the whole transfer pays one hop latency up front.
 *
 * All outputs are integer cycle/byte counts computed with ceil
 * divisions at the chip clock, so every derived schedule is
 * bit-identical at any --threads width and across platforms.
 */

#ifndef DITILE_NOC_INTERCHIP_HH
#define DITILE_NOC_INTERCHIP_HH

#include "common/types.hh"

namespace ditile::noc {

/**
 * Physical inter-chip link parameters. Defaults model a 100 Gb/s
 * SerDes lane bundle with sub-microsecond hop latency.
 */
struct InterChipLinkConfig
{
    /** Per-direction payload bandwidth, gigabits per second. */
    double bandwidthGbps = 100.0;

    /** Fixed per-transfer hop latency (flight + SerDes), nanoseconds. */
    double latencyNs = 350.0;

    /** Serialization granule: payloads are framed into packets. */
    ByteCount packetBytes = 256;

    /** Per-packet framing overhead (header + CRC) on the wire. */
    ByteCount packetHeaderBytes = 16;
};

/**
 * Cycle-cost model of one inter-chip link at a given chip clock.
 * Mirrors how the NoC devices convert NocConfig into cycle costs.
 */
class InterChipLink
{
  public:
    InterChipLink(const InterChipLinkConfig &config,
                  double frequency_ghz);

    const InterChipLinkConfig &config() const { return config_; }

    /** Hop latency converted to chip cycles (ceil). */
    Cycle latencyCycles() const { return latencyCycles_; }

    /** Payload+framing bytes the link moves per chip cycle. */
    double bytesPerCycle() const { return bytesPerCycle_; }

    /** Wire bytes for a payload: framing headers included. */
    ByteCount wireBytes(ByteCount payload_bytes) const;

    /**
     * End-to-end cycles for one transfer: hop latency plus wire-byte
     * serialization (ceil). Zero-byte transfers cost zero cycles.
     */
    Cycle transferCycles(ByteCount payload_bytes) const;

  private:
    InterChipLinkConfig config_;
    Cycle latencyCycles_ = 0;
    double bytesPerCycle_ = 0.0;
};

} // namespace ditile::noc

#endif // DITILE_NOC_INTERCHIP_HH
