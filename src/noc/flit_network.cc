/**
 * @file
 * Flit-level wormhole simulation.
 */

#include "noc/flit_network.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace ditile::noc {

namespace {

/**
 * In-flight packet state. The head owns link path[headIndex-1] and
 * everything behind it until the tail (flits cycles after the head
 * left a link) releases it.
 */
struct Packet
{
    std::size_t id = 0;
    Cycle injectCycle = 0;
    Cycle flits = 1;
    std::vector<Hop> path;
    Cycle routerDelay = 0;    ///< Total router latency on the path.

    std::size_t headIndex = 0;    ///< Next path link to acquire.
    Cycle headStallUntil = 0;     ///< Router pipeline delay gate.
    Cycle doneCycle = 0;          ///< Tail fully drained.
    bool finished = false;
};

} // namespace

NocResult
simulateFlitTraffic(const FlitConfig &config,
                    std::vector<Message> messages)
{
    auto topology = Topology::create(config.noc);
    NocResult result;

    std::stable_sort(messages.begin(), messages.end(),
        [](const Message &a, const Message &b) {
            return a.injectCycle < b.injectCycle;
        });

    std::vector<Packet> packets;
    packets.reserve(messages.size());
    for (std::size_t i = 0; i < messages.size(); ++i) {
        const Message &m = messages[i];
        result.totalBytes += m.bytes;
        result.bytesByClass[static_cast<int>(m.cls)] += m.bytes;
        ++result.numMessages;

        Packet p;
        p.id = i;
        p.injectCycle = m.injectCycle;
        p.flits = std::max<Cycle>(1, ceilDiv<Cycle>(
            static_cast<Cycle>(m.bytes),
            static_cast<Cycle>(config.flitBytes)));
        p.path = topology->route(m.src, m.dst, m.cls);
        for (const Hop &hop : p.path) {
            result.hopBytes += m.bytes;
            ++result.totalHops;
            if (hop.routerStop) {
                result.routerBytes += m.bytes;
                ++result.routerStops;
            }
        }
        if (p.path.empty()) {
            p.finished = true;
            p.doneCycle = p.injectCycle;
        }
        packets.push_back(std::move(p));
    }

    // linkFreeAt[l]: first cycle the link can accept a new packet's
    // head (previous owner's tail has drained).
    std::vector<Cycle> link_free(
        static_cast<std::size_t>(topology->numLinks()), 0);

    double latency_sum = 0.0;
    std::size_t remaining = 0;
    for (const auto &p : packets)
        remaining += !p.finished;

    Cycle cycle = 0;
    while (remaining > 0) {
        DITILE_ASSERT(cycle < config.maxCycles,
                      "flit simulation exceeded the cycle guard");
        // Oldest-first arbitration: packets were sorted by injection.
        for (Packet &p : packets) {
            if (p.finished || p.injectCycle > cycle ||
                p.headStallUntil > cycle) {
                continue;
            }
            if (p.headIndex < p.path.size()) {
                const Hop &hop = p.path[p.headIndex];
                Cycle &free_at =
                    link_free[static_cast<std::size_t>(hop.link)];
                if (free_at > cycle)
                    continue;
                // Acquire: the head crosses this cycle, the tail
                // drains `flits` cycles later, releasing the link.
                free_at = cycle + p.flits;
                ++p.headIndex;
                if (hop.routerStop) {
                    p.headStallUntil = cycle + 1 +
                        config.noc.routerLatencyCycles;
                } else {
                    p.headStallUntil = cycle + 1;
                }
                if (p.headIndex == p.path.size()) {
                    // Head arrived; tail drains behind it.
                    p.doneCycle = cycle + p.flits +
                        config.noc.routerLatencyCycles;
                    p.finished = true;
                    --remaining;
                    latency_sum += static_cast<double>(
                        p.doneCycle - p.injectCycle);
                    result.makespan = std::max(result.makespan,
                                               p.doneCycle);
                }
            }
        }
        ++cycle;
    }

    result.avgLatency = result.numMessages
        ? latency_sum / static_cast<double>(result.numMessages) : 0.0;
    return result;
}

Cycle
flitZeroLoadLatency(const FlitConfig &config, const Message &message)
{
    // Replaying a single message keeps this definitionally consistent
    // with the simulation (head pipeline + tail drain + ejection).
    Message m = message;
    m.injectCycle = 0;
    const auto result = simulateFlitTraffic(config, {m});
    return result.makespan;
}

} // namespace ditile::noc
