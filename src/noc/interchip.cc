/**
 * @file
 * InterChipLink cycle-cost model.
 */

#include "noc/interchip.hh"

#include <cmath>

#include "common/logging.hh"

namespace ditile::noc {

InterChipLink::InterChipLink(const InterChipLinkConfig &config,
                             double frequency_ghz)
    : config_(config)
{
    DITILE_ASSERT(config.bandwidthGbps > 0.0,
                  "inter-chip bandwidth must be positive");
    DITILE_ASSERT(config.latencyNs >= 0.0,
                  "inter-chip latency must be nonnegative");
    DITILE_ASSERT(config.packetBytes > 0,
                  "inter-chip packet size must be positive");
    DITILE_ASSERT(frequency_ghz > 0.0,
                  "chip frequency must be positive");
    // ns * GHz = cycles; Gbps / 8 = GB/s; GB/s / GHz = bytes/cycle.
    latencyCycles_ = static_cast<Cycle>(
        std::ceil(config.latencyNs * frequency_ghz));
    bytesPerCycle_ = config.bandwidthGbps / 8.0 / frequency_ghz;
}

ByteCount
InterChipLink::wireBytes(ByteCount payload_bytes) const
{
    if (payload_bytes == 0)
        return 0;
    const ByteCount packets =
        (payload_bytes + config_.packetBytes - 1) / config_.packetBytes;
    return payload_bytes + packets * config_.packetHeaderBytes;
}

Cycle
InterChipLink::transferCycles(ByteCount payload_bytes) const
{
    if (payload_bytes == 0)
        return 0;
    const double serialization =
        static_cast<double>(wireBytes(payload_bytes)) / bytesPerCycle_;
    return latencyCycles_ + static_cast<Cycle>(std::ceil(serialization));
}

} // namespace ditile::noc
