/**
 * @file
 * Contention-aware network simulation.
 *
 * Messages are bulk transfers; the simulator serializes each over the
 * links of its route with first-come-first-served link arbitration at
 * cycle granularity. This captures the effects the paper's evaluation
 * depends on — hop counts, link contention, serialization latency,
 * per-class volumes — while staying fast enough to replay every
 * message of a full DGNN execution.
 */

#ifndef DITILE_NOC_NETWORK_HH
#define DITILE_NOC_NETWORK_HH

#include <vector>

#include "common/stats.hh"
#include "noc/message.hh"
#include "noc/topology.hh"

namespace ditile::noc {

/**
 * Aggregate outcome of replaying one message batch.
 */
struct NocResult
{
    Cycle makespan = 0;            ///< Last delivery cycle.
    double avgLatency = 0.0;       ///< Mean per-message latency.
    std::uint64_t numMessages = 0;
    ByteCount totalBytes = 0;      ///< Payload bytes injected.
    ByteCount hopBytes = 0;        ///< Sum of bytes x links traversed.
    ByteCount routerBytes = 0;     ///< Sum of bytes x router stops.
    std::uint64_t totalHops = 0;   ///< Link traversals.
    std::uint64_t routerStops = 0; ///< Router pipeline traversals.
    ByteCount bytesByClass[4] = {0, 0, 0, 0}; ///< Indexed by
                                              ///< TrafficClass.
    std::uint64_t reroutedMessages = 0; ///< Took a non-minimal path
                                        ///< around dead links.
    std::uint64_t retriedMessages = 0;  ///< No fault-free path; paid
                                        ///< bounded retry backoff.
    Cycle retryBackoffCycles = 0;       ///< Total backoff charged.

    /** Export every field into a StatSet for report merging. */
    StatSet toStats() const;
};

/**
 * Replay a batch of messages over the configured topology.
 *
 * Messages are served in injection-cycle order (ties by vector
 * order); each link is a FCFS resource moving linkBytesPerCycle per
 * cycle; router stops add routerLatencyCycles.
 *
 * When `faults` is non-null, routes dodge dead links where possible
 * (counted in reroutedMessages); a message with no fault-free path
 * pays maxRetries exponential backoff attempts before being forced
 * through the degraded route (counted in retriedMessages). A null
 * `faults` leaves the fault-free fast path untouched.
 */
NocResult simulateTraffic(const NocConfig &config,
                          std::vector<Message> messages,
                          const NocFaults *faults = nullptr);

/** Ideal (zero-load) latency of a single message, for tests. */
Cycle zeroLoadLatency(const NocConfig &config, const Message &message);

} // namespace ditile::noc

#endif // DITILE_NOC_NETWORK_HH
