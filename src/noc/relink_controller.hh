/**
 * @file
 * Re-Link reconfiguration controller (paper §6.1).
 *
 * The Re-Link architecture "consists of simple transistors that
 * dynamically enable or disable bypass connections between
 * non-adjacent routers". This controller decides, per communication
 * phase, which bypass span the vertical rings should engage: long
 * bypasses help long-haul irregular gathers but starve short-range
 * traffic of router stops (a message cannot exit mid-segment, so a
 * span-S configuration rounds every vertical trip up to multiples of
 * S before the final stop).
 *
 * The decision input is the phase's vertical-distance histogram; the
 * controller scores each candidate span with the same cut-through
 * latency model the network simulator charges and picks the best,
 * also reporting the reconfiguration events the switch fabric spends.
 */

#ifndef DITILE_NOC_RELINK_CONTROLLER_HH
#define DITILE_NOC_RELINK_CONTROLLER_HH

#include <vector>

#include "noc/message.hh"

namespace ditile::noc {

/**
 * Chosen configuration for one phase.
 */
struct RelinkDecision
{
    int span = 1;                  ///< Selected bypass span.
    double expectedLatency = 0.0;  ///< Score of the winner.
    std::uint64_t reconfigEvents = 0; ///< Switch toggles performed.
};

/**
 * Chooses bypass spans phase by phase and tracks switch costs.
 */
class RelinkController
{
  public:
    /**
     * @param rows Vertical ring length.
     * @param candidate_spans Spans the switch fabric supports
     *        (always includes 1 = no bypass).
     */
    explicit RelinkController(int rows,
                              std::vector<int> candidate_spans = {1, 2,
                                                                  4,
                                                                  8});

    /**
     * Pick the span minimizing the expected per-message vertical
     * latency for a batch of messages (only their vertical hop
     * distances matter).
     *
     * @param vertical_distances One entry per message: ring-minimal
     *        vertical distance (0 entries are ignored).
     * @param router_latency Cycles per router stop.
     * @param stuck_open_fraction Fraction of columns whose bypass
     *        switches are stuck open (forced to span 1). Those
     *        columns see every router stop regardless of the chosen
     *        span, so the controller blends their span-1 latency into
     *        each candidate's score before deciding.
     */
    RelinkDecision decide(const std::vector<int> &vertical_distances,
                          Cycle router_latency,
                          double stuck_open_fraction = 0.0);

    /** Cumulative switch toggles across all decide() calls. */
    std::uint64_t totalReconfigEvents() const { return totalEvents_; }

    /** Currently engaged span (1 before any decision). */
    int currentSpan() const { return currentSpan_; }

    /**
     * Router stops a vertical trip of `distance` hops pays under a
     * given span (the model the ring topology implements: stop every
     * `span` hops plus the final stop).
     */
    static int stopsForDistance(int distance, int span);

  private:
    int rows_;
    std::vector<int> candidates_;
    int currentSpan_ = 1;
    std::uint64_t totalEvents_ = 0;
};

} // namespace ditile::noc

#endif // DITILE_NOC_RELINK_CONTROLLER_HH
