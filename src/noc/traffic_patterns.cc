/**
 * @file
 * Synthetic traffic generation.
 */

#include "noc/traffic_patterns.hh"

#include "common/logging.hh"

namespace ditile::noc {

const char *
trafficPatternName(TrafficPattern pattern)
{
    switch (pattern) {
      case TrafficPattern::UniformRandom: return "uniform-random";
      case TrafficPattern::Transpose: return "transpose";
      case TrafficPattern::Hotspot: return "hotspot";
      case TrafficPattern::Neighbor: return "neighbor";
      case TrafficPattern::ColumnGather: return "column-gather";
      case TrafficPattern::RowShift: return "row-shift";
    }
    DITILE_PANIC("unreachable traffic pattern");
}

const std::vector<TrafficPattern> &
allTrafficPatterns()
{
    static const std::vector<TrafficPattern> all = {
        TrafficPattern::UniformRandom, TrafficPattern::Transpose,
        TrafficPattern::Hotspot,       TrafficPattern::Neighbor,
        TrafficPattern::ColumnGather,  TrafficPattern::RowShift,
    };
    return all;
}

std::vector<Message>
generateTraffic(TrafficPattern pattern, int rows, int cols,
                std::size_t count, ByteCount bytes, Rng &rng)
{
    DITILE_ASSERT(rows > 0 && cols > 0);
    const int tiles = rows * cols;
    std::vector<Message> messages;
    messages.reserve(count);

    for (std::size_t i = 0; i < count; ++i) {
        Message m;
        m.bytes = bytes;
        switch (pattern) {
          case TrafficPattern::UniformRandom: {
            m.src = static_cast<TileId>(rng.uniformInt(0, tiles - 1));
            m.dst = static_cast<TileId>(rng.uniformInt(0, tiles - 1));
            break;
          }
          case TrafficPattern::Transpose: {
            // Requires a square grid to be a permutation; emit the
            // i-th tile's transpose partner, cycling.
            const auto t = static_cast<int>(i) % tiles;
            const int r = t / cols;
            const int c = t % cols;
            m.src = static_cast<TileId>(t);
            m.dst = static_cast<TileId>((c % rows) * cols +
                                        (r % cols));
            break;
          }
          case TrafficPattern::Hotspot: {
            m.src = static_cast<TileId>(rng.uniformInt(0, tiles - 1));
            m.dst = static_cast<TileId>(tiles / 2);
            break;
          }
          case TrafficPattern::Neighbor: {
            const auto t = static_cast<int>(i) % tiles;
            const int r = t / cols;
            const int c = t % cols;
            m.src = static_cast<TileId>(t);
            m.dst = static_cast<TileId>(r * cols + (c + 1) % cols);
            break;
          }
          case TrafficPattern::ColumnGather: {
            const auto c = static_cast<int>(rng.uniformInt(0,
                                                           cols - 1));
            m.src = static_cast<TileId>(
                rng.uniformInt(0, rows - 1) * cols + c);
            m.dst = static_cast<TileId>(
                rng.uniformInt(0, rows - 1) * cols + c);
            m.cls = TrafficClass::Spatial;
            break;
          }
          case TrafficPattern::RowShift: {
            const auto t = static_cast<int>(i) % tiles;
            const int r = t / cols;
            const int c = t % cols;
            m.src = static_cast<TileId>(t);
            m.dst = static_cast<TileId>(r * cols + (c + 1) % cols);
            m.cls = TrafficClass::Temporal;
            break;
          }
        }
        messages.push_back(m);
    }
    return messages;
}

} // namespace ditile::noc
