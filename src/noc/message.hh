/**
 * @file
 * NoC message and configuration types.
 */

#ifndef DITILE_NOC_MESSAGE_HH
#define DITILE_NOC_MESSAGE_HH

#include "common/types.hh"

namespace ditile::noc {

/** Which DGNN communication pattern a message belongs to (paper §4.2). */
enum class TrafficClass { Temporal, Spatial, Reuse, Control };

/** Display name for a traffic class. */
const char *trafficClassName(TrafficClass cls);

/**
 * One bulk transfer between two tiles.
 *
 * Messages are aggregates (all bytes moving src->dst in one phase),
 * not single flits; the network model serializes them over links with
 * contention.
 */
struct Message
{
    TileId src = 0;
    TileId dst = 0;
    ByteCount bytes = 0;
    Cycle injectCycle = 0;
    TrafficClass cls = TrafficClass::Spatial;
};

/** Interconnect style of an accelerator (paper baselines + DiTile). */
enum class TopologyKind
{
    Mesh,          ///< 2D mesh, XY routing (ReaDy).
    Ring,          ///< Row/column rings, no bypass.
    Crossbar,      ///< Single-hop any-to-any with output contention
                   ///< (RACE engines).
    Reconfigurable ///< DiTile: horizontal rings + vertical rings with
                   ///< Re-Link bypass segments.
};

/** Display name for a topology kind. */
const char *topologyKindName(TopologyKind kind);

/**
 * Physical NoC parameters.
 */
struct NocConfig
{
    int rows = 16;
    int cols = 16;
    /** Payload bytes a link moves per cycle (flit width x issue rate). */
    int linkBytesPerCycle = 32;
    /** Pipeline latency per router traversal, cycles. */
    Cycle routerLatencyCycles = 2;
    TopologyKind topology = TopologyKind::Reconfigurable;
    /**
     * Re-Link bypass span: a vertical message stops at a router only
     * every `reLinkSpan` hops when the reconfigurable bypasses are
     * engaged (Reconfigurable topology only).
     */
    int reLinkSpan = 4;

    int numTiles() const { return rows * cols; }
};

} // namespace ditile::noc

#endif // DITILE_NOC_MESSAGE_HH
