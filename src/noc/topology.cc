/**
 * @file
 * Topology implementations: mesh, rings, crossbar, reconfigurable.
 */

#include "noc/topology.hh"

#include "common/logging.hh"

namespace ditile::noc {

const char *
trafficClassName(TrafficClass cls)
{
    switch (cls) {
      case TrafficClass::Temporal: return "temporal";
      case TrafficClass::Spatial: return "spatial";
      case TrafficClass::Reuse: return "reuse";
      case TrafficClass::Control: return "control";
    }
    DITILE_PANIC("unreachable traffic class");
}

const char *
topologyKindName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Mesh: return "mesh";
      case TopologyKind::Ring: return "ring";
      case TopologyKind::Crossbar: return "crossbar";
      case TopologyKind::Reconfigurable: return "reconfigurable";
    }
    DITILE_PANIC("unreachable topology kind");
}

namespace {

bool
crossesDead(const std::vector<Hop> &hops, const NocFaults &faults)
{
    if (faults.deadLinks.empty())
        return false;
    for (const Hop &h : hops) {
        if (faults.linkDead(h.link))
            return true;
    }
    return false;
}

/**
 * Shared grid-link helpers: every node owns four outgoing directed
 * links (E/W/S/N); ring topologies use the same ids with wraparound.
 */
class GridBase : public Topology
{
  public:
    GridBase(int rows, int cols)
        : rows_(rows), cols_(cols)
    {
        DITILE_ASSERT(rows > 0 && cols > 0);
    }

    LinkId numLinks() const override { return rows_ * cols_ * 4; }

  protected:
    int row(TileId t) const { return t / cols_; }
    int col(TileId t) const { return t % cols_; }
    TileId tile(int r, int c) const { return r * cols_ + c; }

    void
    step(int &r, int &c, GridDir dir) const
    {
        switch (dir) {
          case GridDir::East: c = (c + 1) % cols_; break;
          case GridDir::West: c = (c + cols_ - 1) % cols_; break;
          case GridDir::South: r = (r + 1) % rows_; break;
          case GridDir::North: r = (r + rows_ - 1) % rows_; break;
        }
    }

    /** Would a ring traversal of `steps` hops cross a dead link? */
    bool
    ringPathDead(int r, int c, GridDir dir, int steps,
                 const NocFaults &faults) const
    {
        if (faults.deadLinks.empty())
            return false;
        while (steps-- > 0) {
            if (faults.linkDead(gridLinkId(tile(r, c), dir)))
                return true;
            step(r, c, dir);
        }
        return false;
    }

    /**
     * Append `steps` ring hops in `dir`, stopping at a router every
     * `span` hops plus at the final node, advancing (r, c).
     */
    void
    appendRingHops(std::vector<Hop> &hops, int &r, int &c, GridDir dir,
                   int steps, int span) const
    {
        int until_stop = span;
        while (steps-- > 0) {
            const bool last = steps == 0;
            const bool stop = last || --until_stop == 0;
            if (stop)
                until_stop = span;
            hops.push_back({gridLinkId(tile(r, c), dir), stop});
            step(r, c, dir);
        }
    }

    int rows_;
    int cols_;
};

/**
 * 2D mesh with dimension-ordered (XY) routing; ReaDy's interconnect
 * style. Under faults it falls back to YX before giving up.
 */
class MeshTopology : public GridBase
{
  public:
    using GridBase::GridBase;

    std::vector<Hop>
    route(TileId src, TileId dst, TrafficClass) const override
    {
        return build(src, dst, true);
    }

    Route
    routeResilient(TileId src, TileId dst, TrafficClass,
                   const NocFaults &faults) const override
    {
        Route out;
        out.hops = build(src, dst, true);
        if (!crossesDead(out.hops, faults))
            return out;
        std::vector<Hop> alt = build(src, dst, false);
        if (!crossesDead(alt, faults)) {
            out.hops = std::move(alt);
            out.rerouted = true;
            return out;
        }
        out.degraded = true;
        return out;
    }

  private:
    std::vector<Hop>
    build(TileId src, TileId dst, bool x_first) const
    {
        std::vector<Hop> hops;
        int r = row(src);
        int c = col(src);
        const int rd = row(dst);
        const int cd = col(dst);
        for (int phase = 0; phase < 2; ++phase) {
            const bool horizontal = (phase == 0) == x_first;
            if (horizontal) {
                while (c != cd) {
                    const GridDir d = cd > c ? GridDir::East
                                             : GridDir::West;
                    hops.push_back({gridLinkId(tile(r, c), d), true});
                    c += cd > c ? 1 : -1;
                }
            } else {
                while (r != rd) {
                    const GridDir d = rd > r ? GridDir::South
                                             : GridDir::North;
                    hops.push_back({gridLinkId(tile(r, c), d), true});
                    r += rd > r ? 1 : -1;
                }
            }
        }
        return hops;
    }
};

/**
 * Row rings + column rings with minimal-direction routing; the
 * no-bypass variant of the paper's dual-layer interconnect. Under
 * faults each ring segment can reverse direction to dodge dead links,
 * and a stuck bypass switch overrides the column's Re-Link span.
 */
class RingTopology : public GridBase
{
  public:
    RingTopology(int rows, int cols, int relink_span)
        : GridBase(rows, cols), span_(relink_span)
    {
        DITILE_ASSERT(span_ >= 1);
    }

    std::vector<Hop>
    route(TileId src, TileId dst, TrafficClass cls) const override
    {
        static const NocFaults none;
        return routeResilient(src, dst, cls, none).hops;
    }

    Route
    routeResilient(TileId src, TileId dst, TrafficClass,
                   const NocFaults &faults) const override
    {
        Route out;
        int r = row(src);
        int c = col(src);
        const int rd = row(dst);
        const int cd = col(dst);

        // Horizontal ring: minimal direction around the row unless
        // that arc crosses a dead link and the opposite arc does not.
        if (c != cd) {
            const int fwd = (cd - c + cols_) % cols_;
            const bool min_east = fwd <= cols_ / 2;
            const int min_steps = min_east ? fwd : cols_ - fwd;
            GridDir dir = min_east ? GridDir::East : GridDir::West;
            int steps = min_steps;
            if (ringPathDead(r, c, dir, steps, faults)) {
                const GridDir alt = min_east ? GridDir::West
                                             : GridDir::East;
                if (!ringPathDead(r, c, alt, cols_ - min_steps,
                                  faults)) {
                    dir = alt;
                    steps = cols_ - min_steps;
                    out.rerouted = true;
                } else {
                    out.degraded = true;
                }
            }
            appendRingHops(out.hops, r, c, dir, steps, 1);
        }
        // Vertical ring: same policy; with a Re-Link span > 1,
        // intermediate routers are bypassed (link still occupied, no
        // router stop) and the message stops every span hops. A stuck
        // bypass switch in this column forces its own span.
        if (r != rd) {
            int span = span_;
            if (const int ov = faults.spanOverride(c))
                span = ov;
            const int fwd = (rd - r + rows_) % rows_;
            const bool min_south = fwd <= rows_ / 2;
            const int min_steps = min_south ? fwd : rows_ - fwd;
            GridDir dir = min_south ? GridDir::South : GridDir::North;
            int steps = min_steps;
            if (ringPathDead(r, c, dir, steps, faults)) {
                const GridDir alt = min_south ? GridDir::North
                                              : GridDir::South;
                if (!ringPathDead(r, c, alt, rows_ - min_steps,
                                  faults)) {
                    dir = alt;
                    steps = rows_ - min_steps;
                    out.rerouted = true;
                } else {
                    out.degraded = true;
                }
            }
            appendRingHops(out.hops, r, c, dir, steps, span);
        }
        return out;
    }

  private:
    int span_;
};

/**
 * Single-stage crossbar: one hop, contention on the destination input
 * port; RACE's engine interconnect.
 */
class CrossbarTopology : public Topology
{
  public:
    explicit CrossbarTopology(int tiles)
        : tiles_(tiles)
    {
    }

    std::vector<Hop>
    route(TileId src, TileId dst, TrafficClass) const override
    {
        if (src == dst)
            return {};
        return {{static_cast<LinkId>(dst), true}};
    }

    LinkId numLinks() const override { return tiles_; }

  private:
    int tiles_;
};

} // namespace

Route
Topology::routeResilient(TileId src, TileId dst, TrafficClass cls,
                         const NocFaults &faults) const
{
    Route out;
    out.hops = route(src, dst, cls);
    out.degraded = crossesDead(out.hops, faults);
    return out;
}

std::unique_ptr<Topology>
Topology::create(const NocConfig &config)
{
    switch (config.topology) {
      case TopologyKind::Mesh:
        return std::make_unique<MeshTopology>(config.rows, config.cols);
      case TopologyKind::Ring:
        return std::make_unique<RingTopology>(config.rows, config.cols,
                                              1);
      case TopologyKind::Crossbar:
        return std::make_unique<CrossbarTopology>(config.numTiles());
      case TopologyKind::Reconfigurable:
        return std::make_unique<RingTopology>(config.rows, config.cols,
                                              config.reLinkSpan);
    }
    DITILE_PANIC("unreachable topology kind");
}

} // namespace ditile::noc
