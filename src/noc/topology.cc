/**
 * @file
 * Topology implementations: mesh, rings, crossbar, reconfigurable.
 */

#include "noc/topology.hh"

#include "common/logging.hh"

namespace ditile::noc {

const char *
trafficClassName(TrafficClass cls)
{
    switch (cls) {
      case TrafficClass::Temporal: return "temporal";
      case TrafficClass::Spatial: return "spatial";
      case TrafficClass::Reuse: return "reuse";
      case TrafficClass::Control: return "control";
    }
    DITILE_PANIC("unreachable traffic class");
}

const char *
topologyKindName(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Mesh: return "mesh";
      case TopologyKind::Ring: return "ring";
      case TopologyKind::Crossbar: return "crossbar";
      case TopologyKind::Reconfigurable: return "reconfigurable";
    }
    DITILE_PANIC("unreachable topology kind");
}

namespace {

/** Direction encoding for grid link ids. */
enum Dir { East = 0, West = 1, South = 2, North = 3 };

/**
 * Shared grid-link helpers: every node owns four outgoing directed
 * links (E/W/S/N); ring topologies use the same ids with wraparound.
 */
class GridBase : public Topology
{
  public:
    GridBase(int rows, int cols)
        : rows_(rows), cols_(cols)
    {
        DITILE_ASSERT(rows > 0 && cols > 0);
    }

    LinkId numLinks() const override { return rows_ * cols_ * 4; }

  protected:
    int row(TileId t) const { return t / cols_; }
    int col(TileId t) const { return t % cols_; }
    TileId tile(int r, int c) const { return r * cols_ + c; }

    LinkId
    link(TileId from, Dir dir) const
    {
        return from * 4 + static_cast<LinkId>(dir);
    }

    int rows_;
    int cols_;
};

/**
 * 2D mesh with dimension-ordered (XY) routing; ReaDy's interconnect
 * style.
 */
class MeshTopology : public GridBase
{
  public:
    using GridBase::GridBase;

    std::vector<Hop>
    route(TileId src, TileId dst, TrafficClass) const override
    {
        std::vector<Hop> hops;
        int r = row(src);
        int c = col(src);
        const int rd = row(dst);
        const int cd = col(dst);
        while (c != cd) {
            const Dir d = cd > c ? East : West;
            hops.push_back({link(tile(r, c), d), true});
            c += cd > c ? 1 : -1;
        }
        while (r != rd) {
            const Dir d = rd > r ? South : North;
            hops.push_back({link(tile(r, c), d), true});
            r += rd > r ? 1 : -1;
        }
        return hops;
    }
};

/**
 * Row rings + column rings with minimal-direction routing; the
 * no-bypass variant of the paper's dual-layer interconnect.
 */
class RingTopology : public GridBase
{
  public:
    RingTopology(int rows, int cols, int relink_span)
        : GridBase(rows, cols), span_(relink_span)
    {
        DITILE_ASSERT(span_ >= 1);
    }

    std::vector<Hop>
    route(TileId src, TileId dst, TrafficClass) const override
    {
        std::vector<Hop> hops;
        int r = row(src);
        int c = col(src);
        const int rd = row(dst);
        const int cd = col(dst);

        // Horizontal ring: minimal direction around the row.
        {
            const int fwd = (cd - c + cols_) % cols_;
            const bool east = fwd <= cols_ / 2;
            int steps = east ? fwd : cols_ - fwd;
            while (steps-- > 0) {
                hops.push_back({link(tile(r, c), east ? East : West),
                                true});
                c = (c + (east ? 1 : cols_ - 1)) % cols_;
            }
        }
        // Vertical ring: minimal direction; with a Re-Link span > 1,
        // intermediate routers are bypassed (link still occupied, no
        // router stop) and the message stops every span_ hops.
        {
            const int fwd = (rd - r + rows_) % rows_;
            const bool south = fwd <= rows_ / 2;
            int steps = south ? fwd : rows_ - fwd;
            int until_stop = span_;
            while (steps-- > 0) {
                const bool last = steps == 0;
                const bool stop = last || --until_stop == 0;
                if (stop)
                    until_stop = span_;
                hops.push_back({link(tile(r, c), south ? South : North),
                                stop});
                r = (r + (south ? 1 : rows_ - 1)) % rows_;
            }
        }
        return hops;
    }

  private:
    int span_;
};

/**
 * Single-stage crossbar: one hop, contention on the destination input
 * port; RACE's engine interconnect.
 */
class CrossbarTopology : public Topology
{
  public:
    explicit CrossbarTopology(int tiles)
        : tiles_(tiles)
    {
    }

    std::vector<Hop>
    route(TileId src, TileId dst, TrafficClass) const override
    {
        if (src == dst)
            return {};
        return {{static_cast<LinkId>(dst), true}};
    }

    LinkId numLinks() const override { return tiles_; }

  private:
    int tiles_;
};

} // namespace

std::unique_ptr<Topology>
Topology::create(const NocConfig &config)
{
    switch (config.topology) {
      case TopologyKind::Mesh:
        return std::make_unique<MeshTopology>(config.rows, config.cols);
      case TopologyKind::Ring:
        return std::make_unique<RingTopology>(config.rows, config.cols,
                                              1);
      case TopologyKind::Crossbar:
        return std::make_unique<CrossbarTopology>(config.numTiles());
      case TopologyKind::Reconfigurable:
        return std::make_unique<RingTopology>(config.rows, config.cols,
                                              config.reLinkSpan);
    }
    DITILE_PANIC("unreachable topology kind");
}

} // namespace ditile::noc
