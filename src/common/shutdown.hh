/**
 * @file
 * Cooperative shutdown flag for long-running tools.
 *
 * ditile_serve runs until told to stop, and a heavy ditile_sweep can
 * run for minutes; both used to die on Ctrl-C/SIGTERM with their
 * buffered CSV/metrics output dropped on the floor. The fix is the
 * classic async-signal-safe pattern: the handler only sets a
 * sig_atomic_t flag, and the tool's loops poll shutdownRequested() at
 * their natural checkpoints (between protocol lines, between sweep
 * grid points), then flush whatever partial output exists before
 * exiting.
 *
 * installShutdownHandler() registers SIGINT and SIGTERM without
 * SA_RESTART so a blocking stdin read returns EINTR instead of
 * swallowing the signal. A second signal while shutdown is already
 * pending falls through to the default disposition, so a hung flush
 * can still be killed interactively.
 */

#ifndef DITILE_COMMON_SHUTDOWN_HH
#define DITILE_COMMON_SHUTDOWN_HH

namespace ditile {

/** Install SIGINT/SIGTERM handlers that set the shutdown flag. */
void installShutdownHandler();

/** True once SIGINT/SIGTERM arrived (or requestShutdown was called). */
bool shutdownRequested();

/**
 * The signal number that triggered shutdown, or 0 when none did
 * (including programmatic requestShutdown()). Tools use it to report
 * *why* they are flushing and to pick the conventional 128+N exit
 * status.
 */
int shutdownSignal();

/** Programmatic trigger, for tests and internal stop paths. */
void requestShutdown();

/** Clear the flag (tests only). */
void resetShutdownForTest();

} // namespace ditile

#endif // DITILE_COMMON_SHUTDOWN_HH
