/**
 * @file
 * Tracer implementation: deterministic Chrome trace_event export,
 * rollups, and the integer metrics registry.
 */

#include "common/trace.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <tuple>

#include "common/json.hh"
#include "common/logging.hh"

namespace ditile {

namespace {

thread_local std::uint64_t t_track_base = 0;

/** Sort key pinning the exported event order regardless of how the
 *  recording interleaved across tracks: longer spans first at equal
 *  timestamps so parents precede their children. */
bool
eventBefore(const TraceEvent &a, const TraceEvent &b)
{
    return std::make_tuple(a.track, a.ts, ~a.dur, a.ord, a.name, a.cat,
                           a.phase) <
        std::make_tuple(b.track, b.ts, ~b.dur, b.ord, b.name, b.cat,
                        b.phase);
}

void
appendEventJson(std::string &out, const TraceEvent &e)
{
    out += "{\"ph\":\"";
    out += e.phase;
    out += "\",\"cat\":";
    out += jsonQuote(e.cat);
    out += ",\"name\":";
    out += jsonQuote(e.name);
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(e.track);
    out += ",\"ts\":";
    out += std::to_string(e.ts);
    if (e.phase == 'X') {
        out += ",\"dur\":";
        out += std::to_string(e.dur);
    }
    if (e.phase == 'i')
        out += ",\"s\":\"t\"";
    if (!e.args.empty() || e.phase == 'C') {
        out += ",\"args\":{";
        bool first = true;
        for (const auto &[key, value] : e.args) {
            if (!first)
                out += ",";
            first = false;
            out += jsonQuote(key);
            out += ":";
            out += value;
        }
        out += "}";
    }
    out += "}";
}

} // namespace

TraceEvent &
TraceEvent::addArg(const std::string &key, long long value)
{
    args.emplace_back(key, std::to_string(value));
    return *this;
}

TraceEvent &
TraceEvent::addArg(const std::string &key, const std::string &value)
{
    args.emplace_back(key, jsonQuote(value));
    return *this;
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable(bool trace_events, bool metrics)
{
    state_.store((trace_events ? kTraceBit : 0u) |
                     (metrics ? kMetricsBit : 0u),
                 std::memory_order_relaxed);
}

void
Tracer::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    state_.store(0, std::memory_order_relaxed);
    events_.clear();
    trackNames_.clear();
    stepCursor_.clear();
    metrics_.clear();
}

void
Tracer::record(TraceEvent event)
{
    if (!traceEnabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
Tracer::instant(const std::string &cat, const std::string &name,
                std::uint64_t track, TraceEvent event)
{
    if (!traceEnabled())
        return;
    event.phase = 'i';
    event.cat = cat;
    event.name = name;
    event.track = track;
    event.dur = 0;
    event.ts = nextStep(track);
    event.ord = event.ts;
    record(std::move(event));
}

std::uint64_t
Tracer::nextStep(std::uint64_t track)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stepCursor_[track]++;
}

void
Tracer::nameTrack(std::uint64_t track, const std::string &name)
{
    if (!traceEnabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    trackNames_[track] = name;
}

void
Tracer::addMetric(const std::string &path, long long delta)
{
    if (!metricsEnabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_[path] += delta;
}

std::vector<std::pair<std::string, long long>>
Tracer::metrics() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {metrics_.begin(), metrics_.end()};
}

void
Tracer::setTrackBase(std::uint64_t base)
{
    t_track_base = base;
}

std::uint64_t
Tracer::trackBase()
{
    return t_track_base;
}

std::string
Tracer::toChromeJson() const
{
    std::vector<TraceEvent> events;
    std::map<std::uint64_t, std::string> names;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events = events_;
        names = trackNames_;
    }
    std::stable_sort(events.begin(), events.end(), eventBefore);

    std::string out = "{\n\"otherData\": {\"clock\": \"virtual-cycles\","
                      " \"generator\": \"ditile-dgnn\"},\n"
                      "\"displayTimeUnit\": \"ns\",\n"
                      "\"traceEvents\": [\n";
    bool first = true;
    // Thread-name metadata first, in ascending track order.
    for (const auto &[track, name] : names) {
        if (!first)
            out += ",\n";
        first = false;
        out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,"
               "\"tid\":";
        out += std::to_string(track);
        out += ",\"args\":{\"name\":";
        out += jsonQuote(name);
        out += "}}";
    }
    for (const auto &e : events) {
        if (!first)
            out += ",\n";
        first = false;
        appendEventJson(out, e);
    }
    out += "\n]\n}\n";
    return out;
}

void
Tracer::writeChromeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        DITILE_THROW("cannot write trace file '", path, "'");
    out << toChromeJson();
}

std::vector<TraceRollupRow>
Tracer::rollup() const
{
    std::vector<TraceEvent> events;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        events = events_;
    }
    return rollupEvents(events);
}

std::vector<TraceEvent>
Tracer::parseChromeJson(const std::string &json)
{
    const JsonValue doc = JsonValue::parse(json);
    std::vector<TraceEvent> events;
    for (const JsonValue &item : doc.at("traceEvents").items()) {
        const std::string ph = item.at("ph").asString();
        if (ph == "M" || ph.empty())
            continue;
        TraceEvent e;
        e.phase = ph[0];
        if (const JsonValue *cat = item.find("cat"))
            e.cat = cat->asString();
        e.name = item.at("name").asString();
        e.track = item.at("tid").asUint();
        e.ts = item.at("ts").asUint();
        if (const JsonValue *dur = item.find("dur"))
            e.dur = dur->asUint();
        events.push_back(std::move(e));
    }
    return events;
}

std::vector<TraceRollupRow>
Tracer::rollupEvents(const std::vector<TraceEvent> &events)
{
    std::map<std::pair<std::string, std::string>, TraceRollupRow> rows;
    for (const TraceEvent &e : events) {
        auto &row = rows[{e.cat, e.name}];
        if (row.count == 0) {
            row.cat = e.cat;
            row.name = e.name;
            row.firstTs = e.ts;
            row.lastEnd = e.ts + e.dur;
        }
        ++row.count;
        if (e.phase == 'X')
            row.totalDur += e.dur;
        row.firstTs = std::min(row.firstTs, e.ts);
        row.lastEnd = std::max(row.lastEnd, e.ts + e.dur);
    }
    std::vector<TraceRollupRow> out;
    out.reserve(rows.size());
    for (auto &[key, row] : rows)
        out.push_back(std::move(row));
    return out;
}

} // namespace ditile
