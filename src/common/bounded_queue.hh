/**
 * @file
 * Bounded FIFO with explicit admission control.
 *
 * The serving tier never blocks producers and never grows without
 * bound: a request either fits under the configured capacity or is
 * rejected with a typed error at admission time. tryPush() is the
 * whole admission decision — there is no blocking push — so a full
 * queue degrades into rejections instead of latency collapse or OOM.
 *
 * The container itself is deliberately not synchronized. The serve
 * loop performs all admissions and removals from its single control
 * thread (parallelism lives inside batch *execution*, not queue
 * access), which is also what keeps rejection decisions deterministic:
 * occupancy at any admission point is a pure function of the arrival
 * schedule and modeled service times. Wrap it in a mutex if a future
 * caller ever needs cross-thread access.
 */

#ifndef DITILE_COMMON_BOUNDED_QUEUE_HH
#define DITILE_COMMON_BOUNDED_QUEUE_HH

#include <cstddef>
#include <deque>
#include <utility>

namespace ditile {

/**
 * FIFO with a hard capacity; push fails instead of growing past it.
 */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity Maximum queued items; clamped to >= 1. */
    explicit BoundedQueue(std::size_t capacity)
        : capacity_(capacity < 1 ? 1 : capacity)
    {
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() >= capacity_; }

    /** Admit one item; false (and no state change) when full. */
    bool
    tryPush(T item)
    {
        if (full())
            return false;
        items_.push_back(std::move(item));
        return true;
    }

    /** Remove the oldest item into `out`; false when empty. */
    bool
    tryPop(T &out)
    {
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        return true;
    }

    const T &front() const { return items_.front(); }

    void clear() { items_.clear(); }

  private:
    std::size_t capacity_;
    std::deque<T> items_;
};

} // namespace ditile

#endif // DITILE_COMMON_BOUNDED_QUEUE_HH
