/**
 * @file
 * Clock abstraction for the serving tier.
 *
 * The streaming service measures request latency and sustained QPS
 * against a clock, but its determinism bar — byte-identical summaries
 * at any --threads width — forbids reading wall time on the hot path.
 * The split mirrors the tracer's virtual-cycle discipline:
 *
 *  - VirtualClock: a manually advanced microsecond counter. The serve
 *    replay loop advances it from *modeled* quantities (arrival
 *    schedules, modeled service durations), so every timestamp is a
 *    pure function of the inputs and the summary is reproducible.
 *  - WallClock: std::chrono::steady_clock, for measuring real
 *    throughput on live traffic. Summaries under WallClock are
 *    explicitly nondeterministic.
 *
 * Both express time as integer microseconds since the clock's epoch,
 * so downstream percentile math never touches floating point.
 */

#ifndef DITILE_COMMON_CLOCK_HH
#define DITILE_COMMON_CLOCK_HH

#include <chrono>
#include <cstdint>

namespace ditile {

/**
 * Monotonic microsecond clock interface.
 */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Microseconds since this clock's epoch. */
    virtual std::uint64_t nowMicros() const = 0;

    /**
     * Move the clock forward to at least `t` microseconds. Virtual
     * clocks jump; the wall clock ignores it (real time advances on
     * its own).
     */
    virtual void advanceTo(std::uint64_t t) = 0;

    /** True when timestamps are deterministic (virtual time). */
    virtual bool deterministic() const = 0;
};

/**
 * Deterministic, manually advanced clock. Not thread-safe: advance it
 * only from serial program points (the serve loop's admission and
 * merge steps), never from inside a parallel region.
 */
class VirtualClock final : public Clock
{
  public:
    std::uint64_t nowMicros() const override { return now_; }

    void
    advanceTo(std::uint64_t t) override
    {
        if (t > now_)
            now_ = t;
    }

    /** Advance by a delta; returns the new now. */
    std::uint64_t
    advance(std::uint64_t delta_us)
    {
        now_ += delta_us;
        return now_;
    }

    bool deterministic() const override { return true; }

  private:
    std::uint64_t now_ = 0;
};

/**
 * Real time (steady_clock), microseconds since construction.
 */
class WallClock final : public Clock
{
  public:
    WallClock() : epoch_(std::chrono::steady_clock::now()) {}

    std::uint64_t
    nowMicros() const override
    {
        const auto elapsed = std::chrono::steady_clock::now() - epoch_;
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                elapsed)
                .count());
    }

    void advanceTo(std::uint64_t) override {}

    bool deterministic() const override { return false; }

  private:
    std::chrono::steady_clock::time_point epoch_;
};

} // namespace ditile

#endif // DITILE_COMMON_CLOCK_HH
