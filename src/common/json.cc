/**
 * @file
 * JSON emission and parsing implementation.
 */

#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace ditile {

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

namespace {

std::string
numberToJson(double value)
{
    // JSON has no NaN/Inf tokens; emitting "null" here used to
    // silently corrupt downstream consumers expecting a number.
    // Producers must guard their divisions (and all in-tree ones do);
    // a non-finite value reaching the writer is malformed input.
    if (!std::isfinite(value))
        DITILE_THROW("cannot serialize non-finite value as JSON");
    char buf[64];
    // Round-trippable doubles without trailing noise for integers.
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    return buf;
}

} // namespace

JsonObject &
JsonObject::add(const std::string &key, const std::string &value)
{
    fields_.emplace_back(key, jsonQuote(value));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, const char *value)
{
    return add(key, std::string(value));
}

JsonObject &
JsonObject::add(const std::string &key, double value)
{
    fields_.emplace_back(key, numberToJson(value));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    fields_.emplace_back(key, buf);
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, bool value)
{
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
}

JsonObject &
JsonObject::addRaw(const std::string &key, const std::string &json)
{
    fields_.emplace_back(key, json);
    return *this;
}

JsonObject &
JsonObject::addStats(const std::string &key, const StatSet &stats)
{
    JsonObject nested;
    for (const auto &name : stats.names())
        nested.add(name, stats.get(name));
    return addRaw(key, nested.toString());
}

std::string
JsonObject::toString(int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    const std::string close_pad(static_cast<std::size_t>(indent), ' ');
    std::ostringstream out;
    out << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        out << (i ? ",\n" : "\n") << pad
            << jsonQuote(fields_[i].first) << ": ";
        // Re-indent nested objects line by line.
        const std::string &value = fields_[i].second;
        for (char c : value) {
            out << c;
            if (c == '\n')
                out << std::string(2, ' ');
        }
    }
    out << "\n" << close_pad << "}";
    return out.str();
}

std::string
JsonObject::toCompactString() const
{
    std::ostringstream out;
    out << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        out << (i ? "," : "") << jsonQuote(fields_[i].first) << ":"
            << fields_[i].second;
    }
    out << "}";
    return out.str();
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

/** Recursive-descent reader over the document text. */
class JsonValue::Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    document()
    {
        JsonValue v = value();
        skipSpace();
        if (pos_ != text_.size())
            fail("trailing characters after document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &what) const
    {
        DITILE_THROW("JSON parse error at byte ", pos_, ": ", what);
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char *word)
    {
        std::size_t n = 0;
        while (word[n]) {
            if (pos_ + n >= text_.size() || text_[pos_ + n] != word[n])
                return false;
            ++n;
        }
        pos_ += n;
        return true;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // The emitter only writes \u00xx control codes; decode
                // the BMP generally as UTF-8 anyway.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    value()
    {
        const char c = peek();
        JsonValue v;
        if (c == '{') {
            v.kind_ = Kind::Object;
            ++pos_;
            if (peek() == '}') {
                ++pos_;
                return v;
            }
            while (true) {
                std::string key = string();
                expect(':');
                v.members_.emplace_back(std::move(key), value());
                const char n = peek();
                ++pos_;
                if (n == '}')
                    return v;
                if (n != ',')
                    fail("expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            v.kind_ = Kind::Array;
            ++pos_;
            if (peek() == ']') {
                ++pos_;
                return v;
            }
            while (true) {
                v.items_.push_back(value());
                const char n = peek();
                ++pos_;
                if (n == ']')
                    return v;
                if (n != ',')
                    fail("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            v.kind_ = Kind::String;
            v.scalar_ = string();
            return v;
        }
        if (c == 't') {
            if (!consumeLiteral("true"))
                fail("bad literal");
            v.kind_ = Kind::Bool;
            v.bool_ = true;
            return v;
        }
        if (c == 'f') {
            if (!consumeLiteral("false"))
                fail("bad literal");
            v.kind_ = Kind::Bool;
            v.bool_ = false;
            return v;
        }
        if (c == 'n') {
            if (!consumeLiteral("null"))
                fail("bad literal");
            v.kind_ = Kind::Null;
            return v;
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            const std::size_t start = pos_;
            if (text_[pos_] == '-')
                ++pos_;
            auto digits = [&] {
                const std::size_t before = pos_;
                while (pos_ < text_.size() && text_[pos_] >= '0' &&
                       text_[pos_] <= '9') {
                    ++pos_;
                }
                return pos_ > before;
            };
            if (!digits())
                fail("bad number");
            if (pos_ < text_.size() && text_[pos_] == '.') {
                ++pos_;
                if (!digits())
                    fail("bad fraction");
            }
            if (pos_ < text_.size() &&
                (text_[pos_] == 'e' || text_[pos_] == 'E')) {
                ++pos_;
                if (pos_ < text_.size() &&
                    (text_[pos_] == '+' || text_[pos_] == '-')) {
                    ++pos_;
                }
                if (!digits())
                    fail("bad exponent");
            }
            v.kind_ = Kind::Number;
            v.scalar_ = text_.substr(start, pos_ - start);
            return v;
        }
        fail("unexpected character");
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

JsonValue
JsonValue::parse(const std::string &text)
{
    return Parser(text).document();
}

namespace {

[[noreturn]] void
kindError(const char *want)
{
    DITILE_THROW("JSON value is not ", want);
}

} // namespace

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        kindError("a bool");
    return bool_;
}

double
JsonValue::asDouble() const
{
    if (kind_ != Kind::Number)
        kindError("a number");
    return std::strtod(scalar_.c_str(), nullptr);
}

long long
JsonValue::asInt() const
{
    if (kind_ != Kind::Number)
        kindError("a number");
    // Integral tokens convert exactly; scientific/fractional tokens
    // fall back to the double path.
    if (scalar_.find_first_of(".eE") == std::string::npos)
        return std::strtoll(scalar_.c_str(), nullptr, 10);
    return static_cast<long long>(asDouble());
}

std::uint64_t
JsonValue::asUint() const
{
    if (kind_ != Kind::Number)
        kindError("a number");
    if (scalar_.find_first_of(".eE") == std::string::npos &&
        !scalar_.empty() && scalar_[0] != '-') {
        return std::strtoull(scalar_.c_str(), nullptr, 10);
    }
    return static_cast<std::uint64_t>(asDouble());
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        kindError("a string");
    return scalar_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        kindError("an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        kindError("an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members())
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    if (const JsonValue *v = find(key))
        return *v;
    DITILE_THROW("JSON object missing key '", key, "'");
}

} // namespace ditile
