/**
 * @file
 * JSON emission implementation.
 */

#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace ditile {

std::string
jsonQuote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

namespace {

std::string
numberToJson(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[64];
    // Round-trippable doubles without trailing noise for integers.
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(value));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    }
    return buf;
}

} // namespace

JsonObject &
JsonObject::add(const std::string &key, const std::string &value)
{
    fields_.emplace_back(key, jsonQuote(value));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, const char *value)
{
    return add(key, std::string(value));
}

JsonObject &
JsonObject::add(const std::string &key, double value)
{
    fields_.emplace_back(key, numberToJson(value));
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, long long value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", value);
    fields_.emplace_back(key, buf);
    return *this;
}

JsonObject &
JsonObject::add(const std::string &key, bool value)
{
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
}

JsonObject &
JsonObject::addRaw(const std::string &key, const std::string &json)
{
    fields_.emplace_back(key, json);
    return *this;
}

JsonObject &
JsonObject::addStats(const std::string &key, const StatSet &stats)
{
    JsonObject nested;
    for (const auto &name : stats.names())
        nested.add(name, stats.get(name));
    return addRaw(key, nested.toString());
}

std::string
JsonObject::toString(int indent) const
{
    const std::string pad(static_cast<std::size_t>(indent) + 2, ' ');
    const std::string close_pad(static_cast<std::size_t>(indent), ' ');
    std::ostringstream out;
    out << "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        out << (i ? ",\n" : "\n") << pad
            << jsonQuote(fields_[i].first) << ": ";
        // Re-indent nested objects line by line.
        const std::string &value = fields_[i].second;
        for (char c : value) {
            out << c;
            if (c == '\n')
                out << std::string(2, ' ');
        }
    }
    out << "\n" << close_pad << "}";
    return out.str();
}

} // namespace ditile
