/**
 * @file
 * Cooperative shutdown flag implementation.
 */

#include "common/shutdown.hh"

#include <csignal>

namespace ditile {

namespace {

volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_signal = 0;

extern "C" void
shutdownHandler(int signum)
{
    g_shutdown = 1;
    g_signal = signum;
    // Re-raise with default disposition on the next delivery: a
    // second Ctrl-C must be able to kill a tool stuck mid-flush.
    std::signal(signum, SIG_DFL);
}

} // namespace

void
installShutdownHandler()
{
#if defined(__unix__) || defined(__APPLE__)
    // sigaction without SA_RESTART: blocking reads (the stdin
    // protocol loop) return EINTR instead of resuming, so the loop
    // observes the flag promptly.
    struct sigaction action = {};
    action.sa_handler = shutdownHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
#else
    std::signal(SIGINT, shutdownHandler);
    std::signal(SIGTERM, shutdownHandler);
#endif
}

bool
shutdownRequested()
{
    return g_shutdown != 0;
}

int
shutdownSignal()
{
    return static_cast<int>(g_signal);
}

void
requestShutdown()
{
    g_shutdown = 1;
}

void
resetShutdownForTest()
{
    g_shutdown = 0;
    g_signal = 0;
}

} // namespace ditile
