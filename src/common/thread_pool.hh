/**
 * @file
 * Deterministic parallel execution layer.
 *
 * A small work-stealing thread pool plus a blocking parallelFor used
 * by the cycle-level engine and the sweep/bench drivers. The design
 * goal is *bit-identical results at any thread count*:
 *
 *  - parallelFor(n, fn) calls fn(i) exactly once per index; callers
 *    write results into per-index slots and merge them afterwards in
 *    canonical (ascending-index) order, so the schedule never leaks
 *    into the output.
 *  - With one thread (the default), parallelFor degenerates to the
 *    plain serial loop on the calling thread — no pool, no atomics on
 *    the data path — so `--threads 1` is literally the serial code.
 *  - The calling thread always participates in the loop, which makes
 *    nested parallelFor (a parallel region inside a pool task) safe:
 *    even if every worker is busy, the caller drains its own indices
 *    and the region terminates.
 *
 * Exceptions thrown by loop bodies or submitted tasks are captured
 * and rethrown on the thread that invoked parallelFor / future::get.
 */

#ifndef DITILE_COMMON_THREAD_POOL_HH
#define DITILE_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ditile {

/**
 * Work-stealing thread pool.
 *
 * Each worker owns a deque: it pops its own work LIFO (cache-warm)
 * and steals FIFO from siblings when idle. submit() from a worker
 * thread pushes to that worker's own deque; submit() from outside
 * round-robins across workers. Destruction drains every queued task
 * before joining.
 */
class ThreadPool
{
  public:
    /** @param num_threads Worker count; clamped to >= 1. */
    explicit ThreadPool(int num_threads);

    /** Drains all queued tasks, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /** Enqueue a fire-and-forget task. */
    void submit(std::function<void()> task);

    /** Enqueue a task and get a future for its result. */
    template <typename Fn>
    auto
    async(Fn &&fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        submit([task] { (*task)(); });
        return future;
    }

    /**
     * Run one queued task if any is available (own queue first, then
     * steal). Returns false when every queue is empty. Used by
     * blocked parallelFor callers to help instead of spinning.
     */
    bool tryRunOneTask();

    /**
     * The process-wide pool used by the engine and the drivers.
     * Sized by setGlobalThreads(); defaults to 1 (serial) so every
     * entry point reproduces the single-threaded numbers unless a
     * --threads flag says otherwise.
     */
    static ThreadPool &global();

    /**
     * Resize the global pool. n <= 0 selects the hardware
     * concurrency. Must not be called while parallel regions are in
     * flight on the global pool.
     */
    static void setGlobalThreads(int n);

    /** Current size of the global pool without instantiating workers. */
    static int globalThreads();

  private:
    struct Queue
    {
        std::deque<std::function<void()>> tasks;
        std::mutex mutex;
    };

    void workerLoop(std::size_t self);
    bool popTask(std::size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;
    std::mutex sleepMutex_;
    std::condition_variable sleepCv_;
    std::atomic<std::size_t> nextQueue_{0};
    std::atomic<std::size_t> pendingTasks_{0};
    std::atomic<bool> stopping_{false};
};

namespace detail {

/** Shared state of one parallelFor region. */
struct ParallelForState
{
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t total = 0;
    std::size_t grain = 1;
    std::function<void(std::size_t)> body;
    std::atomic<bool> failed{false};
    std::mutex errorMutex;
    std::exception_ptr error;

    void
    runChunks()
    {
        for (;;) {
            const std::size_t begin =
                next.fetch_add(grain, std::memory_order_relaxed);
            if (begin >= total)
                return;
            const std::size_t end =
                begin + grain < total ? begin + grain : total;
            if (!failed.load(std::memory_order_relaxed)) {
                try {
                    for (std::size_t i = begin; i < end; ++i)
                        body(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(errorMutex);
                    if (!failed.exchange(true))
                        error = std::current_exception();
                }
            }
            done.fetch_add(end - begin, std::memory_order_acq_rel);
        }
    }
};

} // namespace detail

/**
 * Execute fn(i) for every i in [0, n), blocking until all complete.
 *
 * Uses `pool` (default: ThreadPool::global()). With an effective
 * width of 1 — or n <= 1 — the loop runs inline in index order.
 * Otherwise indices are handed out in dynamic chunks of `grain`; the
 * caller participates and, while waiting for stragglers, helps run
 * unrelated pool tasks, so nesting cannot deadlock. The first
 * exception thrown by fn is rethrown here.
 */
template <typename Fn>
void
parallelFor(std::size_t n, Fn &&fn, ThreadPool *pool = nullptr,
            std::size_t grain = 1)
{
    if (n == 0)
        return;
    ThreadPool &p = pool ? *pool : ThreadPool::global();
    const int width = p.numThreads();
    if (width <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto state = std::make_shared<detail::ParallelForState>();
    state->total = n;
    state->grain = grain < 1 ? 1 : grain;
    state->body = std::ref(fn);

    // Helpers beyond the caller itself; stragglers that wake after
    // the region completed see an exhausted index counter and return.
    const std::size_t helpers =
        std::min<std::size_t>(static_cast<std::size_t>(width), n) - 1;
    for (std::size_t h = 0; h < helpers; ++h)
        p.submit([state] { state->runChunks(); });

    state->runChunks();
    while (state->done.load(std::memory_order_acquire) < n) {
        if (!p.tryRunOneTask())
            std::this_thread::yield();
    }
    if (state->failed.load(std::memory_order_acquire))
        std::rethrow_exception(state->error);
}

} // namespace ditile

#endif // DITILE_COMMON_THREAD_POOL_HH
