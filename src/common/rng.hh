/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The simulator must be bit-reproducible across runs and platforms, so we
 * avoid std::mt19937's unspecified distribution implementations and ship a
 * small xoshiro256** engine plus the handful of distributions the graph
 * generators need. All distributions are implemented here and therefore
 * stable across standard libraries.
 */

#ifndef DITILE_COMMON_RNG_HH
#define DITILE_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace ditile {

/**
 * xoshiro256** PRNG with SplitMix64 seeding.
 *
 * Satisfies the C++ UniformRandomBitGenerator concept so it can also be
 * handed to standard algorithms where reproducibility does not matter.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; all four lanes derived by SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Bernoulli trial with success probability p (clamped to [0,1]). */
    bool bernoulli(double p);

    /**
     * Zipf-like integer in [0, n) with exponent s.
     *
     * Used for skewed-degree vertex selection; implemented by inverse
     * transform over the (approximated) generalized harmonic CDF.
     */
    std::int64_t zipf(std::int64_t n, double s);

    /** Fisher-Yates shuffle of a vector (deterministic given the seed). */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j =
                static_cast<std::size_t>(uniformInt(0,
                    static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /**
     * Draw k distinct integers from [0, n) without replacement.
     * Uses Floyd's algorithm; O(k) expected time, deterministic order
     * normalization (ascending).
     */
    std::vector<std::int64_t> sampleWithoutReplacement(std::int64_t n,
                                                       std::int64_t k);

  private:
    std::uint64_t s_[4];
};

/** Stateless 64-bit mix (SplitMix64 finalizer); handy for hashing seeds. */
std::uint64_t mix64(std::uint64_t x);

} // namespace ditile

#endif // DITILE_COMMON_RNG_HH
