/**
 * @file
 * ASCII table and CSV emission for benchmark harnesses.
 *
 * Every figure-reproduction bench prints one of these tables; keeping the
 * formatting in one place guarantees all benches share the same layout
 * that EXPERIMENTS.md references.
 */

#ifndef DITILE_COMMON_TABLE_HH
#define DITILE_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace ditile {

/**
 * Column-aligned ASCII table with an optional title, plus CSV export.
 */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Define the header row. Must be called before addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Render as an aligned ASCII table. */
    std::string toString() const;

    /** Render as CSV (header + rows, comma-separated, quoted as needed). */
    std::string toCsv() const;

    /**
     * The CSV header line alone / the data rows alone. toCsv() ==
     * headerCsv() + rowsCsv(); split out so streaming writers can
     * flush the header before any row exists (a partially produced
     * CSV then stays machine-readable even when every point fails).
     */
    std::string headerCsv() const;
    std::string rowsCsv() const;

    /** Convenience: print toString() to stdout. */
    void print() const;

    std::size_t numRows() const { return rows_.size(); }

    /** Format helpers for numeric cells. */
    static std::string num(double v, int precision = 2);
    static std::string integer(long long v);
    static std::string percent(double fraction, int precision = 1);
    static std::string sci(double v, int precision = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace ditile

#endif // DITILE_COMMON_TABLE_HH
