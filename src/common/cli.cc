/**
 * @file
 * CliFlags implementation.
 */

#include "common/cli.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace ditile {

CliFlags
CliFlags::parse(int argc, char **argv)
{
    CliFlags flags;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            flags.positional_.push_back(arg);
            continue;
        }
        const std::string body = arg.substr(2);
        const auto eq = body.find('=');
        if (eq == std::string::npos) {
            flags.values_.insert_or_assign(body, std::string("1"));
        } else {
            flags.values_.insert_or_assign(body.substr(0, eq),
                                           body.substr(eq + 1));
        }
    }
    return flags;
}

bool
CliFlags::has(const std::string &name) const
{
    return values_.find(name) != values_.end();
}

std::string
CliFlags::getString(const std::string &name,
                    const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

double
CliFlags::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &value = it->second;
    char *endp = nullptr;
    const double v = std::strtod(value.c_str(), &endp);
    if (value.empty() || endp != value.c_str() + value.size())
        DITILE_THROW("--", name, " expects a number, got '", value,
                     "'");
    return v;
}

long long
CliFlags::getInt(const std::string &name, long long fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &value = it->second;
    char *endp = nullptr;
    const long long v = std::strtoll(value.c_str(), &endp, 10);
    if (value.empty() || endp != value.c_str() + value.size())
        DITILE_THROW("--", name, " expects an integer, got '", value,
                     "'");
    return v;
}

bool
CliFlags::getBool(const std::string &name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    return it->second != "0" && it->second != "false";
}

} // namespace ditile
