/**
 * @file
 * Work-stealing thread pool implementation.
 */

#include "common/thread_pool.hh"

#include <chrono>

#include "common/logging.hh"

namespace ditile {

namespace {

/** Which pool's worker (if any) the current thread belongs to. */
thread_local ThreadPool *tls_pool = nullptr;
thread_local std::size_t tls_worker = 0;

/** Desired size of the global pool (1 = serial default). */
std::mutex global_mutex;
int global_threads = 1;
std::unique_ptr<ThreadPool> global_pool;

} // namespace

ThreadPool::ThreadPool(int num_threads)
{
    const std::size_t n =
        static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads);
    queues_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    // Drain: workers only exit once every queue is empty.
    stopping_.store(true, std::memory_order_release);
    sleepCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    DITILE_ASSERT(task, "submitted an empty task");
    std::size_t target;
    if (tls_pool == this) {
        // Worker-local push: LIFO for cache warmth.
        target = tls_worker;
    } else {
        target = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
            queues_.size();
    }
    {
        std::lock_guard<std::mutex> lock(queues_[target]->mutex);
        queues_[target]->tasks.push_back(std::move(task));
    }
    pendingTasks_.fetch_add(1, std::memory_order_release);
    sleepCv_.notify_one();
}

bool
ThreadPool::popTask(std::size_t self, std::function<void()> &out)
{
    // Own queue first (back = most recently pushed), then steal the
    // oldest task from a sibling.
    {
        Queue &own = *queues_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            out = std::move(own.tasks.back());
            own.tasks.pop_back();
            return true;
        }
    }
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        Queue &victim = *queues_[(self + k) % queues_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            return true;
        }
    }
    return false;
}

bool
ThreadPool::tryRunOneTask()
{
    if (pendingTasks_.load(std::memory_order_acquire) == 0)
        return false;
    const std::size_t self = tls_pool == this ? tls_worker : 0;
    std::function<void()> task;
    if (!popTask(self, task))
        return false;
    pendingTasks_.fetch_sub(1, std::memory_order_acq_rel);
    task();
    return true;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    tls_pool = this;
    tls_worker = self;
    for (;;) {
        std::function<void()> task;
        if (popTask(self, task)) {
            pendingTasks_.fetch_sub(1, std::memory_order_acq_rel);
            task();
            continue;
        }
        std::unique_lock<std::mutex> lock(sleepMutex_);
        if (stopping_.load(std::memory_order_acquire) &&
            pendingTasks_.load(std::memory_order_acquire) == 0) {
            break;
        }
        sleepCv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
            return pendingTasks_.load(std::memory_order_acquire) > 0 ||
                stopping_.load(std::memory_order_acquire);
        });
    }
    tls_pool = nullptr;
}

ThreadPool &
ThreadPool::global()
{
    std::lock_guard<std::mutex> lock(global_mutex);
    if (!global_pool)
        global_pool = std::make_unique<ThreadPool>(global_threads);
    return *global_pool;
}

void
ThreadPool::setGlobalThreads(int n)
{
    if (n <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw == 0 ? 1 : static_cast<int>(hw);
    }
    std::lock_guard<std::mutex> lock(global_mutex);
    global_threads = n;
    if (global_pool && global_pool->numThreads() != n)
        global_pool.reset();
}

int
ThreadPool::globalThreads()
{
    std::lock_guard<std::mutex> lock(global_mutex);
    return global_threads;
}

} // namespace ditile
