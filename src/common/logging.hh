/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 split: panic() for internal invariant violations
 * (simulator bugs -> abort) and fatal() for user/config errors
 * (clean exit(1)). inform()/warn() report status without stopping.
 */

#ifndef DITILE_COMMON_LOGGING_HH
#define DITILE_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace ditile {

/** Verbosity threshold for inform(); warn() always prints. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Process-wide log level (defaults to Normal). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void informImpl(const std::string &msg);
void warnImpl(const std::string &msg);

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}
} // namespace detail

/** Abort with a message: something that must never happen happened. */
#define DITILE_PANIC(...) \
    ::ditile::detail::panicImpl(__FILE__, __LINE__, \
        ::ditile::detail::format(__VA_ARGS__))

/** Exit(1) with a message: the configuration or input is unusable. */
#define DITILE_FATAL(...) \
    ::ditile::detail::fatalImpl(::ditile::detail::format(__VA_ARGS__))

/** Assert a simulator invariant; compiled in all build types. */
#define DITILE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::ditile::detail::panicImpl(__FILE__, __LINE__, \
                ::ditile::detail::format("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

/** Informational message (suppressed at LogLevel::Quiet). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::format(std::forward<Args>(args)...));
}

/** Warning message (always printed). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::format(std::forward<Args>(args)...));
}

} // namespace ditile

#endif // DITILE_COMMON_LOGGING_HH
