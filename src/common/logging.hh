/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 split: panic() for internal invariant violations
 * (simulator bugs -> abort) and fatal() for user/config errors
 * (clean exit(1)). A third, recoverable tier sits between them:
 * DITILE_THROW raises an InputError for malformed user input
 * (files, CLI specs, serialized plans) so library code stays testable
 * and callers can degrade gracefully; tool main()s catch it at the
 * top and turn it into a fatal() exit. inform()/warn() report status
 * without stopping, and warnOnce() deduplicates repeated warnings so
 * degraded-mode runs do not flood stderr.
 */

#ifndef DITILE_COMMON_LOGGING_HH
#define DITILE_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace ditile {

/**
 * Recoverable error for malformed or unusable *input* (edge lists,
 * JSON documents, fault specs, CLI values). Derives std::runtime_error
 * so existing catch sites keep working; library code raises it via
 * DITILE_THROW instead of exiting, and the CLI front ends catch it in
 * main() and exit(1) with the message.
 */
class InputError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Verbosity threshold for inform(); warn() always prints. */
enum class LogLevel { Quiet, Normal, Verbose };

/** Process-wide log level (defaults to Normal). */
LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void informImpl(const std::string &msg);
void warnImpl(const std::string &msg);

/** Max distinct warnOnce sites remembered. Beyond the cap, novel
 *  warnings are suppressed behind one meta-warning so the dedup table
 *  stays bounded over arbitrarily long sweeps. */
inline constexpr std::size_t kWarnOnceCap = 256;

/** Returns true when the message was actually printed. */
bool warnOnceImpl(const std::string &site_key, const std::string &msg);
std::size_t warnOnceTableSize();
void warnOnceResetForTest();

template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}
} // namespace detail

/** Abort with a message: something that must never happen happened. */
#define DITILE_PANIC(...) \
    ::ditile::detail::panicImpl(__FILE__, __LINE__, \
        ::ditile::detail::format(__VA_ARGS__))

/** Exit(1) with a message: the configuration or input is unusable. */
#define DITILE_FATAL(...) \
    ::ditile::detail::fatalImpl(::ditile::detail::format(__VA_ARGS__))

/** Throw InputError: the input is malformed but the caller may recover. */
#define DITILE_THROW(...) \
    throw ::ditile::InputError(::ditile::detail::format(__VA_ARGS__))

/** Assert a simulator invariant; compiled in all build types. */
#define DITILE_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::ditile::detail::panicImpl(__FILE__, __LINE__, \
                ::ditile::detail::format("assertion failed: " #cond " ", \
                                         ##__VA_ARGS__)); \
        } \
    } while (0)

/** Informational message (suppressed at LogLevel::Quiet). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::format(std::forward<Args>(args)...));
}

/** Warning message (always printed). */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::format(std::forward<Args>(args)...));
}

/**
 * Warning printed at most once per *format site* per process. The
 * first argument is the dedup key and must be the stable site prefix
 * ("fault injection active"); later arguments may embed per-point
 * values (dataset names, coordinates) without growing the dedup table,
 * which previously expanded unboundedly across long sweeps. The table
 * itself is capped at detail::kWarnOnceCap distinct sites. Thread-safe;
 * returns true when the message was printed.
 */
template <typename Site, typename... Args>
bool
warnOnce(const Site &site, Args &&...args)
{
    return detail::warnOnceImpl(
        detail::format(site),
        detail::format(site, std::forward<Args>(args)...));
}

} // namespace ditile

#endif // DITILE_COMMON_LOGGING_HH
