/**
 * @file
 * Fundamental scalar types shared by every DiTile-DGNN subsystem.
 *
 * Keeping the width decisions in one place makes the memory footprint of
 * the large graph containers predictable and lets the simulator switch to
 * wider types in one edit if a workload ever overflows them.
 */

#ifndef DITILE_COMMON_TYPES_HH
#define DITILE_COMMON_TYPES_HH

#include <cstdint>

namespace ditile {

/** Vertex identifier within one snapshot (dense, zero-based). */
using VertexId = std::int32_t;

/** Edge identifier / edge count. Large graphs exceed 2^31 edges. */
using EdgeId = std::int64_t;

/** Snapshot index within a discrete-time dynamic graph. */
using SnapshotId = std::int32_t;

/** Tile index within the distributed tile array. */
using TileId = std::int32_t;

/** Processing-element index within one tile. */
using PeId = std::int32_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Operation count (multiply-accumulate, add, activation, ...). */
using OpCount = std::uint64_t;

/** Byte count for traffic/buffer accounting. */
using ByteCount = std::uint64_t;

/** Energy in picojoules. */
using EnergyPj = double;

/** Area in square micrometers. */
using AreaUm2 = double;

/** Sentinel for "no vertex". */
inline constexpr VertexId kInvalidVertex = -1;

/** Sentinel for "no tile". */
inline constexpr TileId kInvalidTile = -1;

} // namespace ditile

#endif // DITILE_COMMON_TYPES_HH
