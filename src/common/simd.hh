/**
 * @file
 * Portable SIMD kernel wrappers for the planner/engine hot loops.
 *
 * The SoA rework (ROADMAP item 5) flattens the per-slot walks into
 * contiguous arrays precisely so the inner loops become the three
 * elementwise kernels below: unit-stride, branch-free, with all the
 * irregular work (gathers, scatter-increments) hoisted out. Each
 * kernel has an explicit vector path behind the usual compiler
 * feature macros (AVX2/SSE2 for f64, plain loops elsewhere) and a
 * scalar fallback that is bit-identical by construction:
 *
 *   - the u64 kernel is integer arithmetic, associative and exact;
 *   - the f64 kernels are purely elementwise (dst[i] op src[i] with
 *     one shared scalar), so lane order never changes the rounding —
 *     no horizontal reductions, no re-association.
 *
 * DITILE_NO_SIMD=1 (or setSimdEnabled(false)) routes every call
 * through the scalar loops at runtime; CI diffs both modes
 * byte-for-byte. The scalar loops are also what the autovectorization
 * spot-check compiles with -fopt-info-vec / -Rpass=loop-vectorize:
 * they are written so gcc and clang vectorize them at -O2/-O3 without
 * target flags, keeping the fallback fast where the intrinsics are
 * compiled out.
 */

#ifndef DITILE_COMMON_SIMD_HH
#define DITILE_COMMON_SIMD_HH

#include <atomic>
#include <cstdint>
#include <cstdlib>

#if defined(__AVX2__)
#include <immintrin.h>
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#endif

namespace ditile::simd {

namespace detail {

inline std::atomic<int> g_simd_state{-1}; // -1 unset, 0 off, 1 on.

} // namespace detail

/**
 * Global SIMD gate, the sibling of workload::digestEnabled().
 * Initialized once from the DITILE_NO_SIMD environment variable (any
 * non-empty value other than "0" selects the scalar loops); tests and
 * CI flip it to compare both paths.
 */
inline bool
simdEnabled()
{
    int s = detail::g_simd_state.load(std::memory_order_relaxed);
    if (s < 0) {
        const char *env = std::getenv("DITILE_NO_SIMD");
        const bool disabled = env != nullptr && *env != '\0' &&
            !(env[0] == '0' && env[1] == '\0');
        s = disabled ? 0 : 1;
        detail::g_simd_state.store(s, std::memory_order_relaxed);
    }
    return s == 1;
}

inline void
setSimdEnabled(bool enabled)
{
    detail::g_simd_state.store(enabled ? 1 : 0,
                               std::memory_order_relaxed);
}

namespace detail {

/** Scalar dst[i] += w * src[i]; the vectorizable reference loop. */
inline void
f64AxpyScalar(double *__restrict dst, const double *__restrict src,
              double w, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] += w * src[i];
}

/** Scalar dst[i] += src[i] over f64. */
inline void
f64AddScalar(double *__restrict dst, const double *__restrict src,
             std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] += src[i];
}

/** Scalar dst[i] += src[i] over u64 (exact, order-free). */
inline void
u64AddScalar(std::uint64_t *__restrict dst,
             const std::uint64_t *__restrict src, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] += src[i];
}

} // namespace detail

/**
 * dst[i] += w * src[i] for i in [0, n). The Eq.-17 load-accumulation
 * kernel (one fused multiply per element, weight shared across the
 * array). Elementwise, so the vector and scalar paths round
 * identically lane by lane.
 */
inline void
f64Axpy(double *dst, const double *src, double w, std::size_t n)
{
    if (!simdEnabled()) {
        detail::f64AxpyScalar(dst, src, w, n);
        return;
    }
    std::size_t i = 0;
#if defined(__AVX2__)
    const __m256d vw = _mm256_set1_pd(w);
    for (; i + 4 <= n; i += 4) {
        const __m256d s = _mm256_loadu_pd(src + i);
        const __m256d d = _mm256_loadu_pd(dst + i);
        _mm256_storeu_pd(dst + i,
                         _mm256_add_pd(d, _mm256_mul_pd(vw, s)));
    }
#elif defined(__SSE2__) || defined(_M_X64)
    const __m128d vw = _mm_set1_pd(w);
    for (; i + 2 <= n; i += 2) {
        const __m128d s = _mm_loadu_pd(src + i);
        const __m128d d = _mm_loadu_pd(dst + i);
        _mm_storeu_pd(dst + i, _mm_add_pd(d, _mm_mul_pd(vw, s)));
    }
#endif
    detail::f64AxpyScalar(dst + i, src + i, w, n - i);
}

/** dst[i] += src[i] over f64 (the totalLoads ascending-t merge). */
inline void
f64Add(double *dst, const double *src, std::size_t n)
{
    if (!simdEnabled()) {
        detail::f64AddScalar(dst, src, n);
        return;
    }
    std::size_t i = 0;
#if defined(__AVX2__)
    for (; i + 4 <= n; i += 4) {
        _mm256_storeu_pd(dst + i,
                         _mm256_add_pd(_mm256_loadu_pd(dst + i),
                                       _mm256_loadu_pd(src + i)));
    }
#elif defined(__SSE2__) || defined(_M_X64)
    for (; i + 2 <= n; i += 2) {
        _mm_storeu_pd(dst + i, _mm_add_pd(_mm_loadu_pd(dst + i),
                                          _mm_loadu_pd(src + i)));
    }
#endif
    detail::f64AddScalar(dst + i, src + i, n - i);
}

/**
 * dst[i] += src[i] over u64 (the accumulate-then-merge step of the
 * slot counter kernels). Integer adds: exact in any width.
 */
inline void
u64Add(std::uint64_t *dst, const std::uint64_t *src, std::size_t n)
{
    if (!simdEnabled()) {
        detail::u64AddScalar(dst, src, n);
        return;
    }
    std::size_t i = 0;
#if defined(__AVX2__)
    for (; i + 4 <= n; i += 4) {
        const __m256i s = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        const __m256i d = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(dst + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(dst + i),
                            _mm256_add_epi64(d, s));
    }
#elif defined(__SSE2__) || defined(_M_X64)
    for (; i + 2 <= n; i += 2) {
        const __m128i s = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        const __m128i d = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(dst + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_add_epi64(d, s));
    }
#endif
    detail::u64AddScalar(dst + i, src + i, n - i);
}

} // namespace ditile::simd

#endif // DITILE_COMMON_SIMD_HH
