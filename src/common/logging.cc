/**
 * @file
 * Logging sink implementations.
 */

#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_set>

namespace ditile {

namespace {
LogLevel g_level = LogLevel::Normal;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
informImpl(const std::string &msg)
{
    if (g_level != LogLevel::Quiet)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

namespace {
std::mutex g_warn_once_mutex;
std::unordered_set<std::string> g_warn_once_seen;
bool g_warn_once_full_notified = false;
} // namespace

bool
warnOnceImpl(const std::string &site_key, const std::string &msg)
{
    bool notify_full = false;
    {
        std::lock_guard<std::mutex> lock(g_warn_once_mutex);
        if (g_warn_once_seen.count(site_key))
            return false;
        if (g_warn_once_seen.size() >= kWarnOnceCap) {
            // Bounded memory: past the cap, remember nothing new and
            // announce the saturation exactly once.
            if (g_warn_once_full_notified)
                return false;
            g_warn_once_full_notified = true;
            notify_full = true;
        } else {
            g_warn_once_seen.insert(site_key);
        }
    }
    if (notify_full) {
        std::fprintf(stderr,
                     "warn: warnOnce table full (%zu sites); further "
                     "novel warnings suppressed\n",
                     kWarnOnceCap);
        return false;
    }
    std::fprintf(stderr, "warn: %s (repeats suppressed)\n", msg.c_str());
    return true;
}

std::size_t
warnOnceTableSize()
{
    std::lock_guard<std::mutex> lock(g_warn_once_mutex);
    return g_warn_once_seen.size();
}

void
warnOnceResetForTest()
{
    std::lock_guard<std::mutex> lock(g_warn_once_mutex);
    g_warn_once_seen.clear();
    g_warn_once_full_notified = false;
}

} // namespace detail
} // namespace ditile
