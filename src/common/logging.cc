/**
 * @file
 * Logging sink implementations.
 */

#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_set>

namespace ditile {

namespace {
LogLevel g_level = LogLevel::Normal;
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
informImpl(const std::string &msg)
{
    if (g_level != LogLevel::Quiet)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
warnOnceImpl(const std::string &msg)
{
    static std::mutex mutex;
    static std::unordered_set<std::string> seen;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!seen.insert(msg).second)
            return;
    }
    std::fprintf(stderr, "warn: %s (repeats suppressed)\n", msg.c_str());
}

} // namespace detail
} // namespace ditile
