/**
 * @file
 * Small integer/float helpers used across the simulator.
 */

#ifndef DITILE_COMMON_MATH_UTIL_HH
#define DITILE_COMMON_MATH_UTIL_HH

#include <cstdint>
#include <type_traits>

namespace ditile {

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
ceilDiv(T num, T den)
{
    static_assert(std::is_integral_v<T>);
    return den == 0 ? 0 : (num + den - 1) / den;
}

/** Round value up to the next multiple of step (step > 0). */
template <typename T>
constexpr T
roundUp(T value, T step)
{
    static_assert(std::is_integral_v<T>);
    return ceilDiv(value, step) * step;
}

/** True if x is a power of two (x > 0). */
constexpr bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** Integer log2 (floor); log2Floor(1) == 0. Undefined for x == 0. */
constexpr int
log2Floor(std::uint64_t x)
{
    int r = 0;
    while (x >>= 1)
        ++r;
    return r;
}

/** Clamp v into [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

} // namespace ditile

#endif // DITILE_COMMON_MATH_UTIL_HH
