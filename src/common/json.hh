/**
 * @file
 * Minimal JSON emission for run results and stats.
 *
 * Write-only: the simulator exports run records for downstream
 * analysis scripts; nothing here parses JSON.
 */

#ifndef DITILE_COMMON_JSON_HH
#define DITILE_COMMON_JSON_HH

#include <string>
#include <vector>

#include "common/stats.hh"

namespace ditile {

/**
 * Ordered JSON object builder (insertion order preserved).
 */
class JsonObject
{
  public:
    JsonObject &add(const std::string &key, const std::string &value);
    JsonObject &add(const std::string &key, const char *value);
    JsonObject &add(const std::string &key, double value);
    JsonObject &add(const std::string &key, long long value);
    JsonObject &add(const std::string &key, bool value);
    JsonObject &addRaw(const std::string &key, const std::string &json);

    /** Nest every stat of a StatSet under `key`. */
    JsonObject &addStats(const std::string &key, const StatSet &stats);

    /** Render with 2-space indentation. */
    std::string toString(int indent = 0) const;

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** Escape a string for JSON embedding (quotes included). */
std::string jsonQuote(const std::string &s);

} // namespace ditile

#endif // DITILE_COMMON_JSON_HH
