/**
 * @file
 * Minimal JSON emission and parsing.
 *
 * Emission: the simulator exports run records for downstream analysis
 * scripts (JsonObject). Parsing: serialized ExecutionPlans come back
 * in through JsonValue, a small recursive-descent reader that keeps
 * number tokens verbatim so doubles emitted with %.17g round-trip
 * bit-exactly.
 */

#ifndef DITILE_COMMON_JSON_HH
#define DITILE_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"

namespace ditile {

/**
 * Ordered JSON object builder (insertion order preserved).
 */
class JsonObject
{
  public:
    JsonObject &add(const std::string &key, const std::string &value);
    JsonObject &add(const std::string &key, const char *value);
    JsonObject &add(const std::string &key, double value);
    JsonObject &add(const std::string &key, long long value);
    JsonObject &add(const std::string &key, bool value);
    JsonObject &addRaw(const std::string &key, const std::string &json);

    /** Nest every stat of a StatSet under `key`. */
    JsonObject &addStats(const std::string &key, const StatSet &stats);

    /** Render with 2-space indentation. */
    std::string toString(int indent = 0) const;

    /**
     * Render on a single line with no whitespace: the form used for
     * line-oriented record streams (the serve WAL) where one record
     * per line is the framing. Raw nested values are emitted
     * verbatim, so keep them compact too.
     */
    std::string toCompactString() const;

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
};

/** Escape a string for JSON embedding (quotes included). */
std::string jsonQuote(const std::string &s);

/**
 * Parsed JSON document node.
 *
 * Numbers keep their source token and convert on demand, so integer
 * and floating-point callers both read exact values. Object member
 * order is preserved. parse() throws std::runtime_error with a byte
 * offset on malformed input.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    /** Parse a complete document (trailing garbage is an error). */
    static JsonValue parse(const std::string &text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }

    /** Scalar accessors; wrong-kind access throws. */
    bool asBool() const;
    double asDouble() const;
    long long asInt() const;
    std::uint64_t asUint() const;
    const std::string &asString() const;

    /** Array accessors. */
    const std::vector<JsonValue> &items() const;
    std::size_t size() const { return items().size(); }

    /** Object accessors. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Member lookup; nullptr when absent (object kind required). */
    const JsonValue *find(const std::string &key) const;

    /** Member lookup; throws when the key is absent. */
    const JsonValue &at(const std::string &key) const;

    bool has(const std::string &key) const { return find(key); }

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar_; ///< Number token or string payload.
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;

    class Parser;
};

} // namespace ditile

#endif // DITILE_COMMON_JSON_HH
