/**
 * @file
 * Tiny command-line flag parser shared by benches and examples.
 *
 * Supports flags of the form --name=value and bare --name (boolean true).
 * Unrecognized flags are collected so google-benchmark flags can pass
 * through untouched.
 */

#ifndef DITILE_COMMON_CLI_HH
#define DITILE_COMMON_CLI_HH

#include <map>
#include <string>
#include <vector>

namespace ditile {

/**
 * Parsed command-line flags.
 */
class CliFlags
{
  public:
    /** Parse argv; every "--k=v" or "--k" becomes an entry. */
    static CliFlags parse(int argc, char **argv);

    bool has(const std::string &name) const;
    std::string getString(const std::string &name,
                          const std::string &fallback) const;
    double getDouble(const std::string &name, double fallback) const;
    long long getInt(const std::string &name, long long fallback) const;
    bool getBool(const std::string &name, bool fallback) const;

    /** argv entries that were not --flags (e.g. positional args). */
    const std::vector<std::string> &positional() const { return positional_; }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace ditile

#endif // DITILE_COMMON_CLI_HH
