/**
 * @file
 * Structured tracing and hierarchical metrics registry.
 *
 * The Tracer collects *spans* — named, nestable intervals on virtual
 * tracks — plus instant and counter events, and exports them as Chrome
 * `trace_event` JSON (loadable in chrome://tracing or Perfetto) or as
 * a per-stage rollup table. It follows the profiling-first methodology
 * of cycle-level simulators (DRAMSim2 epoch stats, Timeloop per-level
 * breakdowns): every pipeline stage — planning (Alg-1 tiling, Alg-2
 * BDW, Re-Link scheduling), the engine's staged execution, NoC traffic
 * per class, DRAM streams, cache lookups, and fault recovery — records
 * what it did and when in *modeled* time.
 *
 * ### Determinism rules
 *
 * Trace content is bit-identical at any --threads width because
 * nothing in it depends on wall-clock or scheduling:
 *
 *  - Timestamps are virtual: modeled cycles for execution tracks, and
 *    per-track step counters (nextStep) for the planning/cache tracks
 *    where no cycle clock exists.
 *  - Events may only be recorded from *serial* program points (the
 *    engine emits after its ordered reduction; planning is serial per
 *    run; cache lookups happen at serial points of a run). Parallel
 *    regions must stage their data into per-index slots and let the
 *    serial merge emit it.
 *  - Export sorts events by (track, ts, dur desc, ord, name), so the
 *    file layout is independent of cross-track interleaving. Within a
 *    track, callers supply `ord` (usually the snapshot id) to pin ties.
 *  - Tools assign each run a disjoint track group via setTrackBase()
 *    so concurrent sweep points never share a track.
 *
 * ### Overhead discipline
 *
 * A disabled tracer must leave every output byte-identical and cost
 * nearly nothing: enabled() is one relaxed atomic load, and every
 * instrumentation site checks it before building an event. Metrics
 * (the hierarchical dotted-path counter registry) are integer-valued,
 * so accumulation order cannot perturb them.
 */

#ifndef DITILE_COMMON_TRACE_HH
#define DITILE_COMMON_TRACE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ditile {

/**
 * One trace event: a complete span ('X'), an instant ('i'), or a
 * counter sample ('C') on a virtual track.
 */
struct TraceEvent
{
    char phase = 'X';
    std::string cat;  ///< plan | engine | noc | dram | cache | fault
    std::string name;
    std::uint64_t track = 0; ///< Chrome "tid"; see Tracer track layout.
    std::uint64_t ts = 0;    ///< Virtual timestamp (modeled cycles).
    std::uint64_t dur = 0;   ///< Span length; 0 for instants/counters.
    std::uint64_t ord = 0;   ///< Stable tie-break within a track.
    /** (key, raw JSON value) pairs; keep values integral or string so
     *  traces stay byte-identical across platforms. */
    std::vector<std::pair<std::string, std::string>> args;

    TraceEvent &addArg(const std::string &key, long long value);
    TraceEvent &addArg(const std::string &key, const std::string &value);
};

/** One (category, name) aggregate over a set of trace events. */
struct TraceRollupRow
{
    std::string cat;
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t totalDur = 0; ///< Summed span durations (X only).
    std::uint64_t firstTs = 0;
    std::uint64_t lastEnd = 0;
};

/**
 * Process-wide span/metrics collector. Disabled by default; tools
 * enable it for --trace=FILE (span events) and/or --metrics (the
 * counter registry plus extended per-run stats).
 */
class Tracer
{
  public:
    // Track-group layout. Tools pick a disjoint base per run with
    // setTrackBase(); instrumentation sites add these fixed offsets.
    static constexpr std::uint64_t kPlanTrack = 0;
    static constexpr std::uint64_t kDramTrack = 1;
    static constexpr std::uint64_t kNocTrack = 2;
    static constexpr std::uint64_t kCacheTrack = 3;
    static constexpr std::uint64_t kFaultTrack = 4;
    static constexpr std::uint64_t kColumnTrackBase = 8;
    static constexpr std::uint64_t kTracksPerRun = 64;

    static Tracer &global();

    /** True when span or metrics collection is on (one relaxed load). */
    bool
    enabled() const
    {
        return state_.load(std::memory_order_relaxed) != 0;
    }

    bool
    traceEnabled() const
    {
        return (state_.load(std::memory_order_relaxed) & kTraceBit) != 0;
    }

    bool
    metricsEnabled() const
    {
        return (state_.load(std::memory_order_relaxed) & kMetricsBit)
            != 0;
    }

    void enable(bool trace_events, bool metrics);

    /** Disable and drop all events, metrics, names, and cursors. */
    void reset();

    /** Append one event. No-op unless span tracing is enabled. */
    void record(TraceEvent event);

    /** Record an instant on `track` at the track's next virtual step. */
    void instant(const std::string &cat, const std::string &name,
                 std::uint64_t track, TraceEvent event = {});

    /**
     * Advance and return the per-track virtual step cursor — the
     * timestamp source for tracks with no modeled cycle clock (plan,
     * cache). Only meaningful from serial program points.
     */
    std::uint64_t nextStep(std::uint64_t track);

    /** Label a track for the exported thread-name metadata. */
    void nameTrack(std::uint64_t track, const std::string &name);

    /**
     * Bump a hierarchical dotted-path counter ("cache.plan.hits").
     * Integer deltas keep totals independent of accumulation order.
     * No-op unless metrics are enabled.
     */
    void addMetric(const std::string &path, long long delta);

    /** Counter snapshot, sorted by path. */
    std::vector<std::pair<std::string, long long>> metrics() const;

    /**
     * Per-run track-group base for the calling thread. Tools set a
     * disjoint base (run index * kTracksPerRun) before each plan or
     * execute so concurrent runs never share a track.
     */
    static void setTrackBase(std::uint64_t base);
    static std::uint64_t trackBase();

    /** Deterministic Chrome trace_event JSON (sorted, compact). */
    std::string toChromeJson() const;
    void writeChromeJson(const std::string &path) const;

    /** Rollup of this tracer's events by (cat, name). */
    std::vector<TraceRollupRow> rollup() const;

    /** Parse a Chrome trace back into events (metadata skipped). */
    static std::vector<TraceEvent> parseChromeJson(
        const std::string &json);

    /** Rollup of arbitrary events by (cat, name), sorted. */
    static std::vector<TraceRollupRow> rollupEvents(
        const std::vector<TraceEvent> &events);

  private:
    static constexpr unsigned kTraceBit = 1u;
    static constexpr unsigned kMetricsBit = 2u;

    mutable std::mutex mutex_;
    std::atomic<unsigned> state_{0};
    std::vector<TraceEvent> events_;
    std::map<std::uint64_t, std::string> trackNames_;
    std::map<std::uint64_t, std::uint64_t> stepCursor_;
    std::map<std::string, long long> metrics_;
};

// The tracer instruments sim:: code throughout; give it its natural
// name there too.
namespace sim {
using ditile::TraceEvent;
using ditile::Tracer;
} // namespace sim

} // namespace ditile

#endif // DITILE_COMMON_TRACE_HH
