/**
 * @file
 * StatSet and Distribution implementations.
 */

#include "common/stats.hh"

namespace ditile {

void
StatSet::add(const std::string &name, double delta)
{
    auto [it, inserted] = values_.try_emplace(name, 0.0);
    if (inserted)
        order_.push_back(name);
    it->second += delta;
}

void
StatSet::set(const std::string &name, double value)
{
    auto [it, inserted] = values_.try_emplace(name, 0.0);
    if (inserted)
        order_.push_back(name);
    it->second = value;
}

double
StatSet::get(const std::string &name) const
{
    auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.find(name) != values_.end();
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &name : other.order_)
        add(name, other.get(name));
}

void
StatSet::mergePrefixed(const std::string &prefix, const StatSet &other)
{
    for (const auto &name : other.order_)
        add(prefix + "." + name, other.get(name));
}

void
StatSet::clear()
{
    for (auto &kv : values_)
        kv.second = 0.0;
}

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
    }
    ++count_;
    sum_ += v;
}

} // namespace ditile
