/**
 * @file
 * Lightweight named statistics registry used by all simulator components.
 *
 * A StatSet is an ordered map from stat name to a scalar accumulator.
 * Components own a StatSet and expose it; harnesses merge StatSets from
 * subcomponents to build report tables. Ordering is insertion order so
 * reports are stable.
 */

#ifndef DITILE_COMMON_STATS_HH
#define DITILE_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ditile {

/**
 * Ordered collection of named double-valued statistics.
 */
class StatSet
{
  public:
    /** Add delta to the named stat, creating it at zero if absent. */
    void add(const std::string &name, double delta);

    /** Set the named stat to an absolute value. */
    void set(const std::string &name, double value);

    /** Read a stat; returns 0 for absent names. */
    double get(const std::string &name) const;

    /** True if the stat has ever been touched. */
    bool has(const std::string &name) const;

    /** Merge another StatSet by summing matching names. */
    void merge(const StatSet &other);

    /** Merge with every incoming name prefixed by "prefix.". */
    void mergePrefixed(const std::string &prefix, const StatSet &other);

    /** Reset all stats to zero (names are kept). */
    void clear();

    /** Names in insertion order. */
    const std::vector<std::string> &names() const { return order_; }

    /** Number of distinct stats. */
    std::size_t size() const { return order_.size(); }

  private:
    std::unordered_map<std::string, double> values_;
    std::vector<std::string> order_;
};

/**
 * Scalar accumulator helpers for min/max/mean tracking of one quantity.
 */
class Distribution
{
  public:
    void sample(double v);
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace ditile

#endif // DITILE_COMMON_STATS_HH
