/**
 * @file
 * Table rendering implementation.
 */

#include "common/table.hh"

#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace ditile {

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    DITILE_ASSERT(rows_.empty(), "header must precede rows");
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    DITILE_ASSERT(row.size() == header_.size(),
                  "row width ", row.size(), " != header width ",
                  header_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::toString() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            if (row[c].size() > widths[c])
                widths[c] = row[c].size();

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::ostringstream oss;
        oss << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << " " << row[c];
            for (std::size_t p = row[c].size(); p < widths[c]; ++p)
                oss << ' ';
            oss << " |";
        }
        oss << "\n";
        return oss.str();
    };

    std::ostringstream sep;
    sep << "+";
    for (std::size_t w : widths) {
        for (std::size_t p = 0; p < w + 2; ++p)
            sep << '-';
        sep << "+";
    }
    sep << "\n";

    std::ostringstream out;
    if (!title_.empty())
        out << "== " << title_ << " ==\n";
    out << sep.str() << renderRow(header_) << sep.str();
    for (const auto &row : rows_)
        out << renderRow(row);
    out << sep.str();
    return out.str();
}

namespace {

std::string
csvQuote(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string q = "\"";
    for (char ch : s) {
        if (ch == '"')
            q += "\"\"";
        else
            q += ch;
    }
    q += "\"";
    return q;
}

} // namespace

std::string
Table::headerCsv() const
{
    std::ostringstream out;
    for (std::size_t c = 0; c < header_.size(); ++c)
        out << (c ? "," : "") << csvQuote(header_[c]);
    out << "\n";
    return out.str();
}

std::string
Table::rowsCsv() const
{
    std::ostringstream out;
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            out << (c ? "," : "") << csvQuote(row[c]);
        out << "\n";
    }
    return out.str();
}

std::string
Table::toCsv() const
{
    return headerCsv() + rowsCsv();
}

void
Table::print() const
{
    std::fputs(toString().c_str(), stdout);
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::integer(long long v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", v);
    return buf;
}

std::string
Table::percent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

} // namespace ditile
