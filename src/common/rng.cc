/**
 * @file
 * xoshiro256** engine and distribution implementations.
 */

#include "common/rng.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ditile {

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    // SplitMix64 expansion of the seed into the four state lanes; this
    // guarantees a non-zero state for every seed, including zero.
    std::uint64_t x = seed;
    for (auto &lane : s_) {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        lane = z ^ (z >> 31);
    }
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) { // full 64-bit span
        return static_cast<std::int64_t>((*this)());
    }
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % range);
}

double
Rng::uniformReal()
{
    // 53 high bits -> double in [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniformReal() < p;
}

std::int64_t
Rng::zipf(std::int64_t n, double s)
{
    assert(n > 0);
    if (n == 1) return 0;
    // Rejection-inversion (Hörmann) is overkill here; the generators only
    // need a deterministic skewed pick, so we invert the continuous
    // approximation of the CDF: F(x) ~ x^(1-s) for s != 1, log for s == 1.
    const double u = uniformReal();
    double x;
    if (std::abs(s - 1.0) < 1e-9) {
        x = std::exp(u * std::log(static_cast<double>(n)));
    } else {
        const double oneMinusS = 1.0 - s;
        const double nPow = std::pow(static_cast<double>(n), oneMinusS);
        x = std::pow(u * (nPow - 1.0) + 1.0, 1.0 / oneMinusS);
    }
    auto idx = static_cast<std::int64_t>(x) - 0;
    if (idx < 1) idx = 1;
    if (idx > n) idx = n;
    return idx - 1;
}

std::vector<std::int64_t>
Rng::sampleWithoutReplacement(std::int64_t n, std::int64_t k)
{
    assert(k >= 0 && k <= n);
    // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t if
    // unseen else insert j. Set membership via sorted vector (k is small
    // relative to n in all our uses).
    std::vector<std::int64_t> chosen;
    chosen.reserve(static_cast<std::size_t>(k));
    for (std::int64_t j = n - k; j < n; ++j) {
        std::int64_t t = uniformInt(0, j);
        auto it = std::lower_bound(chosen.begin(), chosen.end(), t);
        if (it != chosen.end() && *it == t) {
            auto jt = std::lower_bound(chosen.begin(), chosen.end(), j);
            chosen.insert(jt, j);
        } else {
            chosen.insert(it, t);
        }
    }
    return chosen;
}

} // namespace ditile
