/**
 * @file
 * DRAM model implementation.
 */

#include "dram/dram_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace ditile::dram {

double
DramResult::avgBandwidth() const
{
    return completionCycle
        ? static_cast<double>(totalBytes()) /
              static_cast<double>(completionCycle)
        : 0.0;
}

StatSet
DramResult::toStats() const
{
    StatSet s;
    s.set("dram.completion_cycles", static_cast<double>(completionCycle));
    s.set("dram.row_hits", static_cast<double>(rowHits));
    s.set("dram.row_misses", static_cast<double>(rowMisses));
    s.set("dram.row_conflicts", static_cast<double>(rowConflicts));
    s.set("dram.read_bytes", static_cast<double>(readBytes));
    s.set("dram.write_bytes", static_cast<double>(writeBytes));
    return s;
}

DramModel::DramModel(const DramConfig &config)
    : config_(config),
      banks_(static_cast<std::size_t>(config.totalBanks())),
      channelFreeAt_(static_cast<std::size_t>(config.channels), 0)
{
    DITILE_ASSERT(config.channels > 0 && config.banksPerChannel > 0);
    DITILE_ASSERT(config.rowBytes > 0 &&
                  config.channelBytesPerCycle > 0.0);
}

void
DramModel::reset()
{
    for (auto &b : banks_) {
        b.openRow = -1;
        b.freeAt = 0;
    }
    std::fill(channelFreeAt_.begin(), channelFreeAt_.end(), Cycle{0});
}

DramResult
DramModel::service(const std::vector<DramRequest> &requests)
{
    DramResult result;
    for (const DramRequest &req : requests) {
        if (req.bytes == 0)
            continue;
        if (req.write)
            result.writeBytes += req.bytes;
        else
            result.readBytes += req.bytes;

        // Chop into row-aligned chunks; rows interleave across banks
        // (row id selects the bank, XOR-folded for channel spread).
        std::uint64_t addr = req.addr;
        ByteCount remaining = req.bytes;
        while (remaining > 0) {
            const std::uint64_t row = addr / config_.rowBytes;
            const ByteCount row_off = addr % config_.rowBytes;
            const ByteCount chunk =
                std::min<ByteCount>(remaining, config_.rowBytes - row_off);

            const auto bank_idx = static_cast<std::size_t>(
                row % static_cast<std::uint64_t>(config_.totalBanks()));
            const auto channel_idx = static_cast<std::size_t>(
                bank_idx % static_cast<std::size_t>(config_.channels));
            BankState &bank = banks_[bank_idx];
            Cycle &bus_free = channelFreeAt_[channel_idx];

            const Cycle start = std::max({req.issueCycle, bank.freeAt,
                                          bus_free});
            Cycle access;
            if (bank.openRow == static_cast<std::int64_t>(row)) {
                access = config_.rowHitCycles;
                ++result.rowHits;
            } else if (bank.openRow < 0) {
                access = config_.rowMissCycles;
                ++result.rowMisses;
            } else {
                access = config_.rowConflictCycles;
                ++result.rowConflicts;
            }
            bank.openRow = static_cast<std::int64_t>(row);

            const auto transfer = static_cast<Cycle>(
                static_cast<double>(chunk) /
                config_.channelBytesPerCycle + 0.999999);
            const Cycle done = start + access + transfer;
            bank.freeAt = done;
            // The bus is busy only for the data transfer; the access
            // latency overlaps with other banks' transfers.
            bus_free = std::max(bus_free, start + access) + transfer;

            result.completionCycle =
                std::max(result.completionCycle, done);
            addr += chunk;
            remaining -= chunk;
        }
    }
    return result;
}

DramResult
DramModel::serviceStream(std::uint64_t addr, ByteCount bytes, bool write,
                         Cycle issue_cycle)
{
    return service({DramRequest{addr, bytes, write, issue_cycle}});
}

std::uint64_t
RegionAllocator::allocate(ByteCount bytes, ByteCount align)
{
    DITILE_ASSERT(align > 0);
    next_ = roundUp<std::uint64_t>(next_, align);
    const std::uint64_t base = next_;
    next_ += bytes;
    return base;
}

} // namespace ditile::dram
