/**
 * @file
 * Off-chip DRAM timing model (DRAMSim2 substitute).
 *
 * The paper obtains off-chip communication time from DRAMSim2; that
 * simulator is replaced here by a bank/row-buffer model that serves the
 * same role: it converts an access trace into service cycles with
 * row-locality, bank-level parallelism, and channel-bus bandwidth
 * effects. Requests are bulk transfers chopped into row-sized chunks
 * internally, which keeps full-application replays fast while retaining
 * per-row hit/miss behaviour.
 */

#ifndef DITILE_DRAM_DRAM_MODEL_HH
#define DITILE_DRAM_DRAM_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace ditile::dram {

/**
 * DDR-style device and channel parameters (defaults roughly DDR4-2400
 * scaled to the accelerator's 1 GHz reference clock).
 */
struct DramConfig
{
    int channels = 8;                 ///< HBM-class stack.
    int banksPerChannel = 16;
    ByteCount rowBytes = 2048;        ///< Row-buffer size.
    Cycle rowHitCycles = 15;          ///< CAS only.
    Cycle rowMissCycles = 40;         ///< ACT + CAS.
    Cycle rowConflictCycles = 55;     ///< PRE + ACT + CAS.
    double channelBytesPerCycle = 32; ///< Per-channel bus bandwidth.

    int totalBanks() const { return channels * banksPerChannel; }
};

/**
 * One bulk memory request (a stream of consecutive addresses).
 */
struct DramRequest
{
    std::uint64_t addr = 0;
    ByteCount bytes = 0;
    bool write = false;
    Cycle issueCycle = 0;
};

/**
 * Trace-replay outcome.
 */
struct DramResult
{
    Cycle completionCycle = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;     ///< Activates on idle banks.
    std::uint64_t rowConflicts = 0;  ///< Activates closing another row.
    ByteCount readBytes = 0;
    ByteCount writeBytes = 0;

    ByteCount totalBytes() const { return readBytes + writeBytes; }

    /** Achieved bandwidth over the busy window. */
    double avgBandwidth() const;

    /** Export into a StatSet for report merging. */
    StatSet toStats() const;
};

/**
 * Stateful DRAM device model. Row-buffer state persists across
 * service() calls so phased replays see warm rows.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config = {});

    /** Replay a request batch (served in issue order). */
    DramResult service(const std::vector<DramRequest> &requests);

    /** Convenience: single sequential stream starting "now". */
    DramResult serviceStream(std::uint64_t addr, ByteCount bytes,
                             bool write, Cycle issue_cycle = 0);

    /** Drop all open rows and timing state. */
    void reset();

    const DramConfig &config() const { return config_; }

  private:
    struct BankState
    {
        std::int64_t openRow = -1;
        Cycle freeAt = 0;
    };

    DramConfig config_;
    std::vector<BankState> banks_;
    std::vector<Cycle> channelFreeAt_;
};

/**
 * Simple bump allocator handing out non-overlapping address regions
 * for named data structures (features, adjacency, weights, ...), so
 * callers can build traces without inventing addresses.
 */
class RegionAllocator
{
  public:
    /** Allocate a region of `bytes`, aligned to the row size. */
    std::uint64_t allocate(ByteCount bytes, ByteCount align = 2048);

  private:
    std::uint64_t next_ = 0;
};

} // namespace ditile::dram

#endif // DITILE_DRAM_DRAM_MODEL_HH
