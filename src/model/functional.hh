/**
 * @file
 * Exact functional DGNN reference (GCN + LSTM), Eq. 2-4 of the paper.
 *
 * Computes real FP32 feature values on real graphs. Used by tests to
 * prove that the incremental execution plans (Race/Mega/DiTile) are
 * result-preserving relative to full recomputation, and by examples to
 * demonstrate the API end to end.
 */

#ifndef DITILE_MODEL_FUNCTIONAL_HH
#define DITILE_MODEL_FUNCTIONAL_HH

#include <vector>

#include "graph/dynamic_graph.hh"
#include "model/dgnn_config.hh"
#include "model/matrix.hh"

namespace ditile::model {

/**
 * All learned parameters of the DGCN model.
 */
struct DgnnWeights
{
    /** One weight matrix per GCN layer (in_dim x out_dim). */
    std::vector<Matrix> gcn;

    /** LSTM input-side weights W_i, W_f, W_o, W_c (z_dim x hidden). */
    Matrix wi, wf, wo, wc;

    /** LSTM hidden-side weights U_i, U_f, U_o, U_c (hidden x hidden). */
    Matrix ui, uf, uo, uc;

    /** Deterministic random initialization matching config shapes. */
    static DgnnWeights random(const DgnnConfig &config, int feature_dim,
                              std::uint64_t seed);
};

/**
 * Per-snapshot DGNN state: GNN outputs and LSTM hidden/cell features.
 */
struct DgnnState
{
    Matrix z; ///< GNN output features, V x gnnOutputDim.
    Matrix h; ///< LSTM hidden features, V x lstmHidden.
    Matrix c; ///< LSTM cell features,   V x lstmHidden.
};

/**
 * One GCN layer: out = ReLU(Ahat * x * W) with symmetric normalization
 * Ahat = D^-1/2 (A + I) D^-1/2 (self loops included, Kipf-style).
 *
 * @param relu Apply the ReLU nonlinearity (disabled on no layer in the
 *        evaluated model, but exposed for generality).
 */
Matrix gcnLayer(const graph::Csr &g, const Matrix &x, const Matrix &w,
                bool relu = true);

/**
 * One GNN layer under any aggregator variant: the aggregator selects
 * the self/neighbor coefficients, then agg * W (+ ReLU). GcnNormalized
 * reproduces gcnLayer exactly.
 */
Matrix gnnLayer(const graph::Csr &g, const Matrix &x, const Matrix &w,
                GnnAggregator aggregator, bool relu = true);

/**
 * Full L-layer GCN for one snapshot: returns z^t (Eq. 3).
 */
Matrix gnnForward(const graph::Csr &g, const Matrix &features,
                  const DgnnConfig &config, const DgnnWeights &weights);

/**
 * One LSTM step for all vertices (Eq. 4): consumes z^t and the previous
 * hidden/cell state, produces the next hidden/cell state.
 */
void lstmStep(const Matrix &z, const DgnnWeights &weights,
              Matrix &h_inout, Matrix &c_inout);

/**
 * One GRU step for all vertices: six matrix products (reset, update,
 * candidate) instead of the LSTM's eight; the cell state is unused.
 * Uses the i/f/c weight triples of DgnnWeights.
 */
void gruStep(const Matrix &z, const DgnnWeights &weights,
             Matrix &h_inout);

/**
 * One recurrent step dispatching on config.rnn (LSTM or GRU).
 */
void rnnStep(const Matrix &z, const DgnnConfig &config,
             const DgnnWeights &weights, Matrix &h_inout,
             Matrix &c_inout);

/**
 * Run the full DGNN over every snapshot (Eq. 2).
 *
 * @param features Initial vertex features, shared by all snapshots
 *        (unchanged vertices keep their features; structural change is
 *        carried by the snapshots themselves).
 * @return One DgnnState per snapshot.
 */
std::vector<DgnnState> dgnnForward(const graph::DynamicGraph &dg,
                                   const Matrix &features,
                                   const DgnnConfig &config,
                                   const DgnnWeights &weights);

} // namespace ditile::model

#endif // DITILE_MODEL_FUNCTIONAL_HH
