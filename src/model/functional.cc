/**
 * @file
 * Functional DGNN reference implementation.
 */

#include "model/functional.hh"

#include <cmath>

#include "common/logging.hh"

namespace ditile::model {

DgnnWeights
DgnnWeights::random(const DgnnConfig &config, int feature_dim,
                    std::uint64_t seed)
{
    Rng rng(seed);
    DgnnWeights w;
    int in_dim = feature_dim;
    for (int l = 0; l < config.numGcnLayers(); ++l) {
        w.gcn.push_back(Matrix::random(in_dim, config.gcnDims[l], rng));
        in_dim = config.gcnDims[l];
    }
    const int z_dim = config.gnnOutputDim();
    const int hidden = config.lstmHidden;
    w.wi = Matrix::random(z_dim, hidden, rng);
    w.wf = Matrix::random(z_dim, hidden, rng);
    w.wo = Matrix::random(z_dim, hidden, rng);
    w.wc = Matrix::random(z_dim, hidden, rng);
    w.ui = Matrix::random(hidden, hidden, rng);
    w.uf = Matrix::random(hidden, hidden, rng);
    w.uo = Matrix::random(hidden, hidden, rng);
    w.uc = Matrix::random(hidden, hidden, rng);
    return w;
}

Matrix
gcnLayer(const graph::Csr &g, const Matrix &x, const Matrix &w, bool relu)
{
    DITILE_ASSERT(x.rows() == g.numVertices(),
                  "feature rows must equal vertex count");

    // Symmetric normalization with self loops: deg~ = deg + 1.
    const VertexId n = g.numVertices();
    std::vector<float> inv_sqrt(static_cast<std::size_t>(n));
    for (VertexId v = 0; v < n; ++v) {
        inv_sqrt[static_cast<std::size_t>(v)] =
            1.0f / std::sqrt(static_cast<float>(g.degree(v) + 1));
    }

    // Aggregate: agg[v] = sum_{u in N(v) U {v}} norm(u,v) * x[u].
    Matrix agg(n, x.cols());
    for (VertexId v = 0; v < n; ++v) {
        float *out = agg.row(v);
        const float dv = inv_sqrt[static_cast<std::size_t>(v)];
        // Self loop contribution.
        {
            const float coef = dv * dv;
            const float *in = x.row(v);
            for (int c = 0; c < x.cols(); ++c)
                out[c] += coef * in[c];
        }
        for (VertexId u : g.neighbors(v)) {
            const float coef = dv * inv_sqrt[static_cast<std::size_t>(u)];
            const float *in = x.row(u);
            for (int c = 0; c < x.cols(); ++c)
                out[c] += coef * in[c];
        }
    }

    // Combine: out = agg * W, then optional ReLU.
    Matrix out = agg.matmul(w);
    if (relu)
        out.apply([](float v) { return v > 0.0f ? v : 0.0f; });
    return out;
}

Matrix
gnnLayer(const graph::Csr &g, const Matrix &x, const Matrix &w,
         GnnAggregator aggregator, bool relu)
{
    if (aggregator == GnnAggregator::GcnNormalized)
        return gcnLayer(g, x, w, relu);
    DITILE_ASSERT(x.rows() == g.numVertices());

    const VertexId n = g.numVertices();
    Matrix agg(n, x.cols());
    for (VertexId v = 0; v < n; ++v) {
        float *out = agg.row(v);
        float self_coef;
        float neighbor_coef;
        if (aggregator == GnnAggregator::SageMean) {
            // Self plus the mean of the neighborhood.
            self_coef = 1.0f;
            neighbor_coef = g.degree(v) > 0
                ? 1.0f / static_cast<float>(g.degree(v)) : 0.0f;
        } else {
            // GIN: (1 + eps) * self + sum of neighbors, eps = 0.1.
            self_coef = 1.1f;
            neighbor_coef = 1.0f;
        }
        {
            const float *in = x.row(v);
            for (int c = 0; c < x.cols(); ++c)
                out[c] += self_coef * in[c];
        }
        for (VertexId u : g.neighbors(v)) {
            const float *in = x.row(u);
            for (int c = 0; c < x.cols(); ++c)
                out[c] += neighbor_coef * in[c];
        }
    }
    Matrix out = agg.matmul(w);
    if (relu)
        out.apply([](float v) { return v > 0.0f ? v : 0.0f; });
    return out;
}

Matrix
gnnForward(const graph::Csr &g, const Matrix &features,
           const DgnnConfig &config, const DgnnWeights &weights)
{
    DITILE_ASSERT(static_cast<int>(weights.gcn.size()) ==
                  config.numGcnLayers());
    Matrix x = features;
    for (int l = 0; l < config.numGcnLayers(); ++l)
        x = gnnLayer(g, x, weights.gcn[static_cast<std::size_t>(l)],
                     config.aggregator);
    return x;
}

void
lstmStep(const Matrix &z, const DgnnWeights &weights, Matrix &h_inout,
         Matrix &c_inout)
{
    // Eq. 4: eight matmuls then element-wise gates.
    Matrix gi = z.matmul(weights.wi).add(h_inout.matmul(weights.ui));
    Matrix gf = z.matmul(weights.wf).add(h_inout.matmul(weights.uf));
    Matrix go = z.matmul(weights.wo).add(h_inout.matmul(weights.uo));
    Matrix gc = z.matmul(weights.wc).add(h_inout.matmul(weights.uc));

    gi.apply([](float v) { return sigmoid(v); });
    gf.apply([](float v) { return sigmoid(v); });
    go.apply([](float v) { return sigmoid(v); });
    gc.apply([](float v) { return std::tanh(v); });

    c_inout = gf.hadamard(c_inout).add(gi.hadamard(gc));
    Matrix ct = c_inout;
    ct.apply([](float v) { return std::tanh(v); });
    h_inout = go.hadamard(ct);
}

void
gruStep(const Matrix &z, const DgnnWeights &weights, Matrix &h_inout)
{
    // r = sigmoid(W_i z + U_i h); u = sigmoid(W_f z + U_f h);
    // c = tanh(W_c z + U_c (r . h)); h' = u . h + (1 - u) . c.
    Matrix r = z.matmul(weights.wi).add(h_inout.matmul(weights.ui));
    Matrix u = z.matmul(weights.wf).add(h_inout.matmul(weights.uf));
    r.apply([](float v) { return sigmoid(v); });
    u.apply([](float v) { return sigmoid(v); });

    Matrix gated = r.hadamard(h_inout);
    Matrix c = z.matmul(weights.wc).add(gated.matmul(weights.uc));
    c.apply([](float v) { return std::tanh(v); });

    Matrix one_minus_u = u;
    one_minus_u.apply([](float v) { return 1.0f - v; });
    h_inout = u.hadamard(h_inout).add(one_minus_u.hadamard(c));
}

void
rnnStep(const Matrix &z, const DgnnConfig &config,
        const DgnnWeights &weights, Matrix &h_inout, Matrix &c_inout)
{
    if (config.rnn == RnnKind::Lstm)
        lstmStep(z, weights, h_inout, c_inout);
    else
        gruStep(z, weights, h_inout);
}

std::vector<DgnnState>
dgnnForward(const graph::DynamicGraph &dg, const Matrix &features,
            const DgnnConfig &config, const DgnnWeights &weights)
{
    const VertexId n = dg.numVertices();
    DITILE_ASSERT(features.rows() == n);
    DITILE_ASSERT(features.cols() == dg.featureDim());

    std::vector<DgnnState> states;
    states.reserve(static_cast<std::size_t>(dg.numSnapshots()));

    Matrix h(n, config.lstmHidden);
    Matrix c(n, config.lstmHidden);
    for (SnapshotId t = 0; t < dg.numSnapshots(); ++t) {
        DgnnState s;
        s.z = gnnForward(dg.snapshot(t), features, config, weights);
        rnnStep(s.z, config, weights, h, c);
        s.h = h;
        s.c = c;
        states.push_back(std::move(s));
    }
    return states;
}

} // namespace ditile::model
