/**
 * @file
 * DGNN model hyperparameters (paper Section 2.2, Eq. 2-4).
 *
 * The evaluated model is the classic DGCN: an L-layer GCN per snapshot
 * feeding an LSTM over the per-vertex output features. The config pins
 * the layer widths; the input width comes from the dataset.
 */

#ifndef DITILE_MODEL_DGNN_CONFIG_HH
#define DITILE_MODEL_DGNN_CONFIG_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace ditile::model {

/**
 * GNN aggregation variant (paper §2.2: "many GNN variants have been
 * proposed such as GraphSAGE and Graph Isomorphism Networks (GINs);
 * their key computations can be abstracted in the form of adjacency
 * matrices"). The variant selects the neighbor coefficients; the
 * gather/combine structure — and therefore the accelerator dataflow —
 * is identical.
 */
enum class GnnAggregator
{
    GcnNormalized, ///< Kipf: 1/sqrt(deg~u * deg~v), self loops.
    SageMean,      ///< GraphSAGE-mean: self + mean of neighbors.
    GinSum,        ///< GIN: (1 + eps) * self + sum of neighbors.
};

/** Display name for an aggregator. */
const char *aggregatorName(GnnAggregator kind);

/**
 * Recurrent kernel variant (paper §2.2: "this work can also be
 * efficiently applied to other RNN variants, such as gated recurrent
 * units (GRUs)"). LSTM uses eight matrix products per step (Eq. 4);
 * GRU uses six.
 */
enum class RnnKind { Lstm, Gru };

/** Display name for an RNN kind. */
const char *rnnKindName(RnnKind kind);

/**
 * Numeric representation (paper §7.1: "the 32-bit floating-point
 * representation is used in the evaluation, which proves to be
 * sufficient for maintaining inference accuracy" — i.e. narrower
 * formats are the natural next question, so the simulator models
 * them: precision scales every byte count and the per-op energy).
 */
enum class Precision { Fp32, Fp16, Int8 };

/** Display name for a precision. */
const char *precisionName(Precision precision);

/** Bytes per value under a precision. */
int precisionBytes(Precision precision);

/**
 * Model-shape description shared by the functional engine, the op
 * accounting, and every accelerator model.
 */
struct DgnnConfig
{
    /**
     * Output width of each GCN layer; size() == L (paper uses L = 2).
     * Layer l maps width(l-1) -> gcnDims[l], with width(-1) = input
     * feature dim of the dataset.
     */
    std::vector<int> gcnDims = {256, 128};

    /** LSTM hidden/cell width (H in Eq. 4). */
    int lstmHidden = 128;

    /** Bytes per value (FP32 per the paper's evaluation). */
    int bytesPerValue = 4;

    /** GNN aggregation variant (GCN in the evaluation). */
    GnnAggregator aggregator = GnnAggregator::GcnNormalized;

    /** Recurrent kernel variant (LSTM in the evaluation). */
    RnnKind rnn = RnnKind::Lstm;

    /** Numeric format (FP32 in the evaluation). */
    Precision precision = Precision::Fp32;

    /** Copy with the precision (and bytesPerValue) switched. */
    DgnnConfig
    withPrecision(Precision p) const
    {
        DgnnConfig c = *this;
        c.precision = p;
        c.bytesPerValue = precisionBytes(p);
        return c;
    }

    /** Number of GCN layers L. */
    int
    numGcnLayers() const
    {
        return static_cast<int>(gcnDims.size());
    }

    /** Input width of GCN layer l given the dataset feature width. */
    int
    gcnInputDim(int layer, int feature_dim) const
    {
        DITILE_ASSERT(layer >= 0 && layer < numGcnLayers());
        return layer == 0 ? feature_dim : gcnDims[layer - 1];
    }

    /** Output width of GCN layer l. */
    int
    gcnOutputDim(int layer) const
    {
        DITILE_ASSERT(layer >= 0 && layer < numGcnLayers());
        return gcnDims[layer];
    }

    /** Width of the GNN output vector z fed to the LSTM. */
    int
    gnnOutputDim() const
    {
        DITILE_ASSERT(!gcnDims.empty());
        return gcnDims.back();
    }
};

} // namespace ditile::model

#endif // DITILE_MODEL_DGNN_CONFIG_HH
