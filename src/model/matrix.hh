/**
 * @file
 * Minimal dense row-major matrix for the functional DGNN reference.
 *
 * This is deliberately a correctness vehicle, not a performance one: the
 * functional engine exists so tests can check that the incremental
 * algorithms produce bit-identical results to full recomputation, and so
 * examples can show real numbers flowing through the API.
 */

#ifndef DITILE_MODEL_MATRIX_HH
#define DITILE_MODEL_MATRIX_HH

#include <vector>

#include "common/rng.hh"

namespace ditile::model {

/**
 * Dense row-major float matrix.
 */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(int rows, int cols, float fill = 0.0f);

    /** Deterministic uniform [-scale, scale) initialization. */
    static Matrix random(int rows, int cols, Rng &rng, float scale = 0.1f);

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    float &at(int r, int c) { return data_[idx(r, c)]; }
    float at(int r, int c) const { return data_[idx(r, c)]; }

    float *row(int r) { return data_.data() + idx(r, 0); }
    const float *row(int r) const { return data_.data() + idx(r, 0); }

    /** this * other (naive triple loop). */
    Matrix matmul(const Matrix &other) const;

    /** Element-wise sum; shapes must match. */
    Matrix add(const Matrix &other) const;

    /** Element-wise (Hadamard) product; shapes must match. */
    Matrix hadamard(const Matrix &other) const;

    /** Apply a scalar function element-wise in place. */
    template <typename F>
    void
    apply(F &&f)
    {
        for (float &v : data_)
            v = f(v);
    }

    /** Max absolute element difference against another matrix. */
    float maxAbsDiff(const Matrix &other) const;

    const std::vector<float> &data() const { return data_; }

  private:
    std::size_t
    idx(int r, int c) const
    {
        return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_)
            + static_cast<std::size_t>(c);
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<float> data_;
};

/** Numerically stable logistic sigmoid. */
float sigmoid(float x);

} // namespace ditile::model

#endif // DITILE_MODEL_MATRIX_HH
