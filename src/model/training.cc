/**
 * @file
 * Training-stage accounting implementation.
 */

#include "model/training.hh"

namespace ditile::model {

TrainingOps
countTrainingOps(const graph::DynamicGraph &dg, const DgnnConfig &config,
                 AlgoKind kind)
{
    TrainingOps total;
    IncrementalPlanner planner(dg, config, kind);

    // Parameter count for the weight update.
    OpCount weight_values = 0;
    int in_dim = dg.featureDim();
    for (int l = 0; l < config.numGcnLayers(); ++l) {
        weight_values += static_cast<OpCount>(in_dim) *
            static_cast<OpCount>(config.gcnDims[
                static_cast<std::size_t>(l)]);
        in_dim = config.gcnDims[static_cast<std::size_t>(l)];
    }
    const auto z_dim = static_cast<OpCount>(config.gnnOutputDim());
    const auto hidden = static_cast<OpCount>(config.lstmHidden);
    const OpCount pairs = config.rnn == RnnKind::Lstm ? 4 : 3;
    weight_values += pairs * z_dim * hidden + pairs * hidden * hidden;

    for (SnapshotId t = 0; t < dg.numSnapshots(); ++t) {
        const auto &plan = planner.plan(t);
        const auto fwd = countSnapshotOps(dg, t, config, plan);
        total.forward += fwd;

        // Backward: dL/dx re-runs every gather with transposed
        // coefficients and dL/dW re-runs every combination against
        // the cached activations — two MACs per forward MAC — plus
        // the activation-derivative element-wise pass.
        OpsBreakdown bwd;
        bwd.aggregationMacs = 2 * fwd.aggregationMacs;
        bwd.combinationMacs = 2 * fwd.combinationMacs;
        bwd.rnnMacs = 2 * fwd.rnnMacs;
        bwd.activationOps = fwd.activationOps;    // derivative eval.
        bwd.elementwiseOps = 2 * fwd.elementwiseOps;
        total.backward += bwd;

        // SGD-style update: one multiply-add per parameter per
        // snapshot contributing gradients.
        total.weightUpdateOps += 2 * weight_values;
    }
    return total;
}

} // namespace ditile::model
