/**
 * @file
 * Display names for the model variants.
 */

#include "model/dgnn_config.hh"

namespace ditile::model {

const char *
aggregatorName(GnnAggregator kind)
{
    switch (kind) {
      case GnnAggregator::GcnNormalized: return "GCN";
      case GnnAggregator::SageMean: return "GraphSAGE-mean";
      case GnnAggregator::GinSum: return "GIN";
    }
    DITILE_PANIC("unreachable aggregator kind");
}

const char *
rnnKindName(RnnKind kind)
{
    switch (kind) {
      case RnnKind::Lstm: return "LSTM";
      case RnnKind::Gru: return "GRU";
    }
    DITILE_PANIC("unreachable RNN kind");
}

const char *
precisionName(Precision precision)
{
    switch (precision) {
      case Precision::Fp32: return "FP32";
      case Precision::Fp16: return "FP16";
      case Precision::Int8: return "INT8";
    }
    DITILE_PANIC("unreachable precision");
}

int
precisionBytes(Precision precision)
{
    switch (precision) {
      case Precision::Fp32: return 4;
      case Precision::Fp16: return 2;
      case Precision::Int8: return 1;
    }
    DITILE_PANIC("unreachable precision");
}

} // namespace ditile::model
