/**
 * @file
 * IncrementalPlanner implementation.
 */

#include "model/incremental.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "graph/delta.hh"

namespace ditile::model {

namespace {

/** Sum of degrees of a vertex set in g. */
EdgeId
sumDegrees(const graph::Csr &g, const std::vector<VertexId> &vs)
{
    EdgeId total = 0;
    for (VertexId v : vs)
        total += g.degree(v);
    return total;
}

/** |vs union N(vs)|: distinct input features a re-aggregation reads. */
VertexId
uniqueInputCount(const graph::Csr &g, const std::vector<VertexId> &vs)
{
    const auto expanded = graph::expandFrontier(g, vs, 1);
    return static_cast<VertexId>(expanded.size());
}

/** Endpoints of added edges only (deletion-to-addition transform). */
std::vector<VertexId>
additionSeeds(const graph::GraphDelta &delta)
{
    std::vector<VertexId> seeds;
    seeds.reserve(delta.addedEdges().size() * 2);
    for (auto [u, v] : delta.addedEdges()) {
        seeds.push_back(u);
        seeds.push_back(v);
    }
    std::sort(seeds.begin(), seeds.end());
    seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
    return seeds;
}

/** Sorted union of two ascending vertex lists. */
std::vector<VertexId>
unionSorted(const std::vector<VertexId> &a, const std::vector<VertexId> &b)
{
    std::vector<VertexId> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

} // namespace

const char *
algoName(AlgoKind kind)
{
    switch (kind) {
      case AlgoKind::ReAlg: return "Re-Alg";
      case AlgoKind::RaceAlg: return "Race-Alg";
      case AlgoKind::MegaAlg: return "Mega-Alg";
      case AlgoKind::DiTileAlg: return "DiTile-Alg";
    }
    DITILE_PANIC("unreachable algorithm kind");
}

const std::vector<AlgoKind> &
allAlgorithms()
{
    static const std::vector<AlgoKind> all = {
        AlgoKind::ReAlg, AlgoKind::RaceAlg, AlgoKind::MegaAlg,
        AlgoKind::DiTileAlg,
    };
    return all;
}

IncrementalPlanner::IncrementalPlanner(const graph::DynamicGraph &dg,
                                       const DgnnConfig &config,
                                       AlgoKind kind,
                                       bool exact_expansion, double kappa)
    : dg_(dg), config_(config), kind_(kind),
      exactExpansion_(exact_expansion), kappa_(kappa)
{
    DITILE_ASSERT(config_.numGcnLayers() >= 1);
    DITILE_ASSERT(kappa_ > 0.0);
    buildAll();
}

const SnapshotPlan &
IncrementalPlanner::plan(SnapshotId t) const
{
    DITILE_ASSERT(t >= 0 && t < dg_.numSnapshots());
    return plans_[static_cast<std::size_t>(t)];
}

std::vector<VertexId>
IncrementalPlanner::expandOnce(const graph::Csr &g,
                               const std::vector<VertexId> &from,
                               int salt, double kappa) const
{
    // Reused membership scratch (thread-local: plan sets build on
    // pool workers). Only the bits this call sets — the frontier and
    // its additions — are cleared on exit, so a call costs
    // O(frontier + edges scanned), not an O(V) allocation + fill.
    static thread_local std::vector<char> in;
    if (in.size() < static_cast<std::size_t>(g.numVertices()))
        in.assign(static_cast<std::size_t>(g.numVertices()), 0);
    for (VertexId v : from)
        in[static_cast<std::size_t>(v)] = 1;

    std::vector<VertexId> added;
    // Clears the set bits even when the expansion throws, so the
    // arena never leaks stale membership into the next call.
    struct ScratchGuard
    {
        std::vector<char> &bits;
        const std::vector<VertexId> &from;
        const std::vector<VertexId> &added;
        ~ScratchGuard()
        {
            for (VertexId v : from)
                bits[static_cast<std::size_t>(v)] = 0;
            for (VertexId v : added)
                bits[static_cast<std::size_t>(v)] = 0;
        }
    } guard{in, from, added};
    for (VertexId v : from) {
        const double dv = g.degree(v);
        for (VertexId u : g.neighbors(v)) {
            if (in[static_cast<std::size_t>(u)] != 0)
                continue;
            if (!exactExpansion_) {
                // Influence-damped propagation: the change at v moves
                // v's contribution to u's aggregate by a term weighted
                // 1/sqrt(deg_v * deg_u); sample crossing with
                // probability kappa over that normalization.
                const double du = g.degree(u);
                const double p = std::min(
                    1.0, kappa / std::sqrt(std::max(1.0, dv) *
                                           std::max(1.0, du)));
                const std::uint64_t h = mix64(
                    (static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(v)) << 32) ^
                    static_cast<std::uint32_t>(u) ^
                    (static_cast<std::uint64_t>(salt) * 0x9e3779b9ULL));
                const double unit = static_cast<double>(h >> 11) *
                    0x1.0p-53;
                if (unit >= p)
                    continue;
            }
            in[static_cast<std::size_t>(u)] = 1;
            added.push_back(u);
        }
    }
    std::sort(added.begin(), added.end());
    return unionSorted(from, added);
}

SnapshotPlan
IncrementalPlanner::fullPlan(SnapshotId t) const
{
    const graph::Csr &g = dg_.snapshot(t);
    SnapshotPlan p;
    p.fullRecompute = true;
    std::vector<VertexId> all(static_cast<std::size_t>(g.numVertices()));
    for (VertexId v = 0; v < g.numVertices(); ++v)
        all[static_cast<std::size_t>(v)] = v;

    const int layers = config_.numGcnLayers();
    p.gcn.resize(static_cast<std::size_t>(layers));
    for (int l = 0; l < layers; ++l) {
        auto &lw = p.gcn[static_cast<std::size_t>(l)];
        lw.vertices = all;
        lw.gatherEdges = g.numAdjacencies();
        lw.uniqueInputs = g.numVertices();
    }
    p.rnnVertices = all;
    p.adjacencyUpdates = static_cast<std::size_t>(g.numEdges());
    return p;
}

void
IncrementalPlanner::buildAll()
{
    const SnapshotId t_count = dg_.numSnapshots();
    const int layers = config_.numGcnLayers();
    plans_.resize(static_cast<std::size_t>(t_count));

    // Per-snapshot plan construction (seed expansion, degree sums,
    // frontier counts) is a pure function of the snapshot and its
    // delta — the hash-sampled expansion carries its own salt — so it
    // fans out over the thread pool into per-snapshot slots. Only
    // DiTile's cumulative selective-RNN state chains across
    // snapshots; that union runs in a cheap serial epilogue below, so
    // plans are identical at any thread width.
    parallelFor(static_cast<std::size_t>(t_count), [&](std::size_t i) {
        const auto t = static_cast<SnapshotId>(i);
        if (t == 0 || kind_ == AlgoKind::ReAlg) {
            plans_[i] = fullPlan(t);
            return;
        }

        const graph::Csr &g = dg_.snapshot(t);
        const graph::GraphDelta &delta = dg_.delta(t);

        // Seeds: value changes originate at every changed edge's
        // endpoints (additions and deletions both move feature
        // values), so Race and DiTile seed from the full affected set.
        // Mega tracks redundancy only at output granularity over the
        // common graph and seeds from the added edges alone — its
        // documented approximation.
        std::vector<VertexId> seeds;
        if (kind_ == AlgoKind::MegaAlg) {
            seeds = additionSeeds(delta);
        } else {
            seeds = delta.affectedVertices();
        }

        SnapshotPlan p;
        p.fullRecompute = false;
        p.adjacencyUpdates = delta.numChanges();
        p.gcn.resize(static_cast<std::size_t>(layers));

        // Per-layer sets: layer l recomputes the l-step damped
        // expansion of the seeds. Mega's coarse output-level tracking
        // propagates conservatively (2/3 of the per-layer influence
        // kappa), consistent with its smaller measured op counts in
        // the paper's Figure 7.
        const double kappa = kind_ == AlgoKind::MegaAlg
            ? kappa_ * 2.0 / 3.0 : kappa_;
        std::vector<std::vector<VertexId>> sets;
        sets.push_back(seeds);
        for (int l = 1; l < layers; ++l) {
            sets.push_back(expandOnce(g, sets.back(),
                                      static_cast<int>(t) * 16 + l,
                                      kappa));
        }

        if (kind_ == AlgoKind::MegaAlg) {
            // Output-granularity redundancy tracking: every layer
            // recomputes the full max-hop affected set because
            // intermediate features are not tracked (paper §7.3).
            const auto &coarse = sets.back();
            for (int l = 0; l < layers; ++l) {
                auto &lw = p.gcn[static_cast<std::size_t>(l)];
                lw.vertices = coarse;
                lw.gatherEdges = sumDegrees(g, coarse);
                lw.uniqueInputs = uniqueInputCount(g, coarse);
            }
        } else {
            for (int l = 0; l < layers; ++l) {
                auto &lw = p.gcn[static_cast<std::size_t>(l)];
                lw.vertices = sets[static_cast<std::size_t>(l)];
                lw.gatherEdges = sumDegrees(g, lw.vertices);
                lw.uniqueInputs = uniqueInputCount(g, lw.vertices);
            }
        }

        // RNN: baselines update every hidden state; DiTile's
        // selective set depends on earlier snapshots and is filled in
        // by the serial epilogue.
        if (kind_ != AlgoKind::DiTileAlg) {
            p.rnnVertices.resize(
                static_cast<std::size_t>(g.numVertices()));
            for (VertexId v = 0; v < g.numVertices(); ++v)
                p.rnnVertices[static_cast<std::size_t>(v)] = v;
        }
        plans_[i] = std::move(p);
    });

    // Cumulative hidden-state change set: once a vertex's z changes at
    // some snapshot, its h/c differ from the reuse baseline at every
    // later snapshot, so DiTile's selective RNN keeps updating it.
    if (kind_ == AlgoKind::DiTileAlg) {
        std::vector<VertexId> dirty_hidden;
        for (SnapshotId t = 1; t < t_count; ++t) {
            auto &p = plans_[static_cast<std::size_t>(t)];
            if (p.fullRecompute)
                continue;
            dirty_hidden = unionSorted(dirty_hidden,
                                       p.gcn.back().vertices);
            p.rnnVertices = dirty_hidden;
        }
    }
}

} // namespace ditile::model
