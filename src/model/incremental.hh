/**
 * @file
 * Execution planning for the four DGNN update algorithms (paper §7.1).
 *
 * Every accelerator in the evaluation runs one of four algorithms:
 *
 *  - **Re-Alg** (ReaDy, DGNN-Booster): full recomputation of every
 *    snapshot.
 *  - **Race-Alg** (RACE): redundancy-aware incremental execution that
 *    skips vertices whose per-layer (intermediate) features are
 *    unchanged. Both edge additions and edge deletions seed
 *    recomputation, and the affected set grows per GCN layer.
 *  - **Mega-Alg** (MEGA): transforms deletions into additions over the
 *    mutually inclusive (common) graph, so only added edges seed
 *    recomputation — but it tracks redundancy only at output-feature
 *    granularity, so all layers recompute the full L-hop affected set
 *    (no intermediate-feature reuse).
 *  - **DiTile-Alg** (this paper): deletion-to-addition transform AND
 *    per-layer intermediate reuse AND a selective RNN that only
 *    updates vertices whose GNN output or hidden state changed.
 *
 * ### Value-level propagation damping
 *
 * Expanding affected sets by the exact structural frontier saturates
 * any well-connected graph within two hops, which contradicts the
 * empirical observation all of these accelerators build on: 86.7-95.9%
 * of vertices keep identical features across snapshots (RACE's
 * measurement, quoted in §3.1.1 of the paper). The reason is
 * numerical: GCN aggregation weights each neighbor by the normalized
 * Laplacian coefficient 1/sqrt(deg_u * deg_v), so one changed neighbor
 * among many rarely changes the aggregate past the reuse threshold.
 * The planner therefore expands frontiers *stochastically*: a change
 * at u propagates across edge (u,v) with probability
 * min(1, kappa / sqrt(deg_u * deg_v)) — i.e. an expected kappa
 * downstream changes per changed vertex, independent of degree. The
 * sampling is a deterministic hash of (u, v, layer), so plans are
 * reproducible. Passing exact_expansion = true restores the exact
 * structural frontier (used by the functional-equivalence tests).
 *
 * A SnapshotPlan captures exactly which vertices recompute at each GCN
 * layer, how many adjacency entries they gather, how many distinct
 * input features they read, and which vertices run the LSTM. Both the
 * op/byte accounting and the cycle-level simulator consume these
 * plans, so the algorithmic comparison is identical across Figures 7,
 * 8, 9 and 12.
 */

#ifndef DITILE_MODEL_INCREMENTAL_HH
#define DITILE_MODEL_INCREMENTAL_HH

#include <string>
#include <vector>

#include "graph/dynamic_graph.hh"
#include "model/dgnn_config.hh"

namespace ditile::model {

/** The four evaluated DGNN update algorithms. */
enum class AlgoKind { ReAlg, RaceAlg, MegaAlg, DiTileAlg };

/** Short display name ("Re-Alg", ...). */
const char *algoName(AlgoKind kind);

/** All four algorithms in paper presentation order. */
const std::vector<AlgoKind> &allAlgorithms();

/**
 * Work performed at one GCN layer of one snapshot.
 */
struct LayerWork
{
    /** Vertices whose layer output is recomputed, ascending. */
    std::vector<VertexId> vertices;

    /** Adjacency entries gathered (sum of degrees over vertices). */
    EdgeId gatherEdges = 0;

    /**
     * Distinct vertices whose layer-input features are read
     * (the recomputed vertices plus their neighbors).
     */
    VertexId uniqueInputs = 0;
};

/**
 * Complete execution plan for one snapshot under one algorithm.
 */
struct SnapshotPlan
{
    /** Per-GCN-layer work, size == L. */
    std::vector<LayerWork> gcn;

    /** Vertices whose LSTM state is recomputed, ascending. */
    std::vector<VertexId> rnnVertices;

    /** Changed edges whose adjacency metadata is processed. */
    std::size_t adjacencyUpdates = 0;

    /** True for snapshot 0 and for Re-Alg on every snapshot. */
    bool fullRecompute = false;
};

/**
 * Produces SnapshotPlans for a dynamic graph under one algorithm.
 * Plans for all snapshots are built eagerly in the constructor
 * (DiTile's selective RNN needs the cumulative changed-state history).
 */
class IncrementalPlanner
{
  public:
    /**
     * @param exact_expansion Disable value-level damping and expand
     *        affected sets by the exact structural frontier.
     * @param kappa Expected downstream value changes per changed
     *        vertex per layer (ignored when exact_expansion).
     */
    IncrementalPlanner(const graph::DynamicGraph &dg,
                       const DgnnConfig &config, AlgoKind kind,
                       bool exact_expansion = false,
                       double kappa = 1.2);

    /** Plan for snapshot t (t in [0, T)). */
    const SnapshotPlan &plan(SnapshotId t) const;

    AlgoKind kind() const { return kind_; }
    const DgnnConfig &config() const { return config_; }

  private:
    SnapshotPlan fullPlan(SnapshotId t) const;
    void buildAll();

    /**
     * One damped (or exact) BFS level from `from` on snapshot t's
     * graph; returns from's union with the propagated neighbors.
     */
    std::vector<VertexId> expandOnce(const graph::Csr &g,
                                     const std::vector<VertexId> &from,
                                     int salt, double kappa) const;

    const graph::DynamicGraph &dg_;
    DgnnConfig config_;
    AlgoKind kind_;
    bool exactExpansion_;
    double kappa_;
    std::vector<SnapshotPlan> plans_;
};

} // namespace ditile::model

#endif // DITILE_MODEL_INCREMENTAL_HH
