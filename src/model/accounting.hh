/**
 * @file
 * Operation and DRAM-traffic accounting (Figures 7 and 8 quantities).
 *
 * Converts SnapshotPlans into arithmetic-operation counts and off-chip
 * byte volumes. The paper's simulator "monitors the number of arithmetic
 * operations and the number of accesses across the memory hierarchy"
 * (§7.1); this module is that monitor, kept separate from timing so the
 * same numbers feed the DRAM simulator, the energy model and the
 * figure benches.
 */

#ifndef DITILE_MODEL_ACCOUNTING_HH
#define DITILE_MODEL_ACCOUNTING_HH

#include "graph/dynamic_graph.hh"
#include "model/dgnn_config.hh"
#include "model/incremental.hh"

namespace ditile::model {

/**
 * Arithmetic-operation counts for one or more snapshots.
 */
struct OpsBreakdown
{
    OpCount aggregationMacs = 0;  ///< GCN gather multiply-accumulates.
    OpCount combinationMacs = 0;  ///< GCN weight-matrix MACs.
    OpCount rnnMacs = 0;          ///< LSTM matrix MACs (8 matmuls).
    OpCount activationOps = 0;    ///< ReLU / sigmoid / tanh evaluations.
    OpCount elementwiseOps = 0;   ///< LSTM gate element-wise mul/add.

    /** Total scalar arithmetic (one MAC counts as two operations). */
    OpCount
    totalArithmetic() const
    {
        return 2 * (aggregationMacs + combinationMacs + rnnMacs)
            + activationOps + elementwiseOps;
    }

    OpCount totalMacs() const
    {
        return aggregationMacs + combinationMacs + rnnMacs;
    }

    OpsBreakdown &operator+=(const OpsBreakdown &o);
};

/**
 * Off-chip traffic by data class, in bytes.
 */
struct DramBreakdown
{
    ByteCount weightBytes = 0;
    ByteCount adjacencyBytes = 0;
    ByteCount inputFeatureBytes = 0;
    ByteCount intermediateBytes = 0;
    ByteCount outputBytes = 0;

    ByteCount
    total() const
    {
        return weightBytes + adjacencyBytes + inputFeatureBytes
            + intermediateBytes + outputBytes;
    }

    DramBreakdown &operator+=(const DramBreakdown &o);
};

/**
 * Dataflow-quality knobs the accounting depends on. These are computed
 * by the tiling layer (DiTile) or fixed per baseline (paper-described
 * dataflows); the model library stays independent of the tiling
 * library by taking them as plain numbers.
 */
struct AccountingParams
{
    /**
     * Fraction of gathered adjacency entries whose source feature
     * lives outside the gathering subgraph and must be re-fetched
     * from DRAM (Eq. 6's cross-subgraph term: (1 - 1/a) under random
     * tiling, lower for locality-aware tiling). Input bytes for layer
     * l are (uniqueInputs_l + gatherEdges_l * crossFetchFraction) *
     * dim * bytes.
     */
    double crossFetchFraction = 0.0;

    /**
     * Fraction of inter-layer intermediate traffic that spills to DRAM
     * when the algorithm caches intermediates on chip (Race, DiTile).
     */
    double cachedIntermediateFraction = 0.15;

    /**
     * Same fraction for algorithms without intermediate-feature reuse
     * (Re, Mega): within-snapshot double buffering still keeps about
     * half the stream on chip, but nothing survives to the next layer
     * pass.
     */
    double uncachedIntermediateFraction = 0.5;

    /** True if the algorithm reuses intermediate features on chip. */
    static bool cachesIntermediates(AlgoKind kind);
};

/** MACs one vertex's recurrent step costs (8 matmuls LSTM, 6 GRU). */
OpCount rnnMacsPerVertex(const DgnnConfig &config);

/** Activation evaluations per vertex per recurrent step. */
OpCount rnnActivationsPerVertex(const DgnnConfig &config);

/** Element-wise operations per vertex per recurrent step. */
OpCount rnnElementwisePerVertex(const DgnnConfig &config);

/** Ops for one snapshot given its plan. */
OpsBreakdown countSnapshotOps(const graph::DynamicGraph &dg, SnapshotId t,
                              const DgnnConfig &config,
                              const SnapshotPlan &plan);

/** DRAM bytes for one snapshot given its plan. */
DramBreakdown countSnapshotDram(const graph::DynamicGraph &dg,
                                SnapshotId t, const DgnnConfig &config,
                                AlgoKind kind, const SnapshotPlan &plan,
                                const AccountingParams &params);

/** Ops summed over every snapshot for one algorithm. */
OpsBreakdown countTotalOps(const graph::DynamicGraph &dg,
                           const DgnnConfig &config, AlgoKind kind);

/** DRAM bytes summed over every snapshot for one algorithm. */
DramBreakdown countTotalDram(const graph::DynamicGraph &dg,
                             const DgnnConfig &config, AlgoKind kind,
                             const AccountingParams &params);

} // namespace ditile::model

#endif // DITILE_MODEL_ACCOUNTING_HH
