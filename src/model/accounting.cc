/**
 * @file
 * Accounting implementation.
 */

#include "model/accounting.hh"

#include "common/logging.hh"

namespace ditile::model {

OpsBreakdown &
OpsBreakdown::operator+=(const OpsBreakdown &o)
{
    aggregationMacs += o.aggregationMacs;
    combinationMacs += o.combinationMacs;
    rnnMacs += o.rnnMacs;
    activationOps += o.activationOps;
    elementwiseOps += o.elementwiseOps;
    return *this;
}

DramBreakdown &
DramBreakdown::operator+=(const DramBreakdown &o)
{
    weightBytes += o.weightBytes;
    adjacencyBytes += o.adjacencyBytes;
    inputFeatureBytes += o.inputFeatureBytes;
    intermediateBytes += o.intermediateBytes;
    outputBytes += o.outputBytes;
    return *this;
}

bool
AccountingParams::cachesIntermediates(AlgoKind kind)
{
    return kind == AlgoKind::RaceAlg || kind == AlgoKind::DiTileAlg;
}

OpCount
rnnMacsPerVertex(const DgnnConfig &config)
{
    const auto z = static_cast<OpCount>(config.gnnOutputDim());
    const auto h = static_cast<OpCount>(config.lstmHidden);
    // LSTM (Eq. 4): four z*W and four h*U products. GRU: three of
    // each (reset, update, candidate).
    const OpCount pairs = config.rnn == RnnKind::Lstm ? 4 : 3;
    return pairs * z * h + pairs * h * h;
}

OpCount
rnnActivationsPerVertex(const DgnnConfig &config)
{
    const auto h = static_cast<OpCount>(config.lstmHidden);
    // LSTM: 3 sigmoid + 2 tanh vectors. GRU: 2 sigmoid + 1 tanh.
    return (config.rnn == RnnKind::Lstm ? 5 : 3) * h;
}

OpCount
rnnElementwisePerVertex(const DgnnConfig &config)
{
    const auto h = static_cast<OpCount>(config.lstmHidden);
    // LSTM: f.c, i.g, their sum, o.tanh(c). GRU: r.h, u.h, (1-u).c
    // and the final sum.
    return 4 * h;
}

OpsBreakdown
countSnapshotOps(const graph::DynamicGraph &dg, SnapshotId t,
                 const DgnnConfig &config, const SnapshotPlan &plan)
{
    (void)t;
    const int feature_dim = dg.featureDim();
    OpsBreakdown ops;

    for (int l = 0; l < config.numGcnLayers(); ++l) {
        const auto &lw = plan.gcn[static_cast<std::size_t>(l)];
        const auto in_dim =
            static_cast<OpCount>(config.gcnInputDim(l, feature_dim));
        const auto out_dim =
            static_cast<OpCount>(config.gcnOutputDim(l));
        const auto verts = static_cast<OpCount>(lw.vertices.size());
        const auto gathers = static_cast<OpCount>(lw.gatherEdges);

        // Aggregation: one MAC per gathered feature element; the +verts
        // term is the self-loop contribution of the normalized
        // Laplacian.
        ops.aggregationMacs += (gathers + verts) * in_dim;
        // Combination: dense (1 x in_dim) * (in_dim x out_dim) per
        // vertex.
        ops.combinationMacs += verts * in_dim * out_dim;
        // ReLU per produced element.
        ops.activationOps += verts * out_dim;
    }

    // Recurrent kernel (Eq. 4 for LSTM, the 6-product variant for
    // GRU).
    const auto rnn_verts = static_cast<OpCount>(plan.rnnVertices.size());
    ops.rnnMacs += rnn_verts * rnnMacsPerVertex(config);
    ops.activationOps += rnn_verts * rnnActivationsPerVertex(config);
    ops.elementwiseOps += rnn_verts * rnnElementwisePerVertex(config);
    return ops;
}

DramBreakdown
countSnapshotDram(const graph::DynamicGraph &dg, SnapshotId t,
                  const DgnnConfig &config, AlgoKind kind,
                  const SnapshotPlan &plan,
                  const AccountingParams &params)
{
    DITILE_ASSERT(params.crossFetchFraction >= 0.0 &&
                  params.crossFetchFraction <= 1.0,
                  "cross-fetch fraction must be in [0, 1]");
    const auto bpv = static_cast<ByteCount>(config.bytesPerValue);
    const int feature_dim = dg.featureDim();
    const graph::Csr &g = dg.snapshot(t);
    DramBreakdown dram;

    // Weights: streamed once per snapshot; small relative to features.
    ByteCount weight_values = 0;
    int in_dim = feature_dim;
    for (int l = 0; l < config.numGcnLayers(); ++l) {
        weight_values += static_cast<ByteCount>(in_dim)
            * static_cast<ByteCount>(config.gcnDims[
                  static_cast<std::size_t>(l)]);
        in_dim = config.gcnDims[static_cast<std::size_t>(l)];
    }
    const auto z_dim = static_cast<ByteCount>(config.gnnOutputDim());
    const auto hidden = static_cast<ByteCount>(config.lstmHidden);
    weight_values += 4 * z_dim * hidden + 4 * hidden * hidden;
    dram.weightBytes = weight_values * bpv;

    // Adjacency: full CSR on a full recompute, delta records otherwise.
    if (plan.fullRecompute) {
        dram.adjacencyBytes =
            static_cast<ByteCount>(g.numAdjacencies()) * 4 +
            static_cast<ByteCount>(g.numVertices()) * 4;
    } else {
        dram.adjacencyBytes =
            static_cast<ByteCount>(plan.adjacencyUpdates) * 8;
    }

    // Layer-0 inputs: every distinct touched feature once, plus the
    // Eq. 6 cross-subgraph refetch term — one extra fetch per gathered
    // adjacency entry whose source lives in another subgraph.
    const auto &l0 = plan.gcn.front();
    dram.inputFeatureBytes = static_cast<ByteCount>(
        (static_cast<double>(l0.uniqueInputs) +
         static_cast<double>(l0.gatherEdges) *
             params.crossFetchFraction) *
        static_cast<double>(feature_dim) * static_cast<double>(bpv));

    // Inter-layer intermediates: written by layer l-1, read (with the
    // same cross-subgraph refetch behaviour) by layer l. Algorithms
    // with intermediate-feature reuse keep most of this on chip;
    // Re/Mega stream it through DRAM.
    const double spill = AccountingParams::cachesIntermediates(kind)
        ? params.cachedIntermediateFraction
        : params.uncachedIntermediateFraction;
    for (int l = 1; l < config.numGcnLayers(); ++l) {
        const auto &prev = plan.gcn[static_cast<std::size_t>(l - 1)];
        const auto &cur = plan.gcn[static_cast<std::size_t>(l)];
        const auto dim = static_cast<ByteCount>(
            config.gcnOutputDim(l - 1));
        const ByteCount write =
            static_cast<ByteCount>(prev.vertices.size()) * dim * bpv;
        const auto read = static_cast<ByteCount>(
            (static_cast<double>(cur.uniqueInputs) +
             static_cast<double>(cur.gatherEdges) *
                 params.crossFetchFraction) *
            static_cast<double>(dim) * static_cast<double>(bpv));
        dram.intermediateBytes += static_cast<ByteCount>(
            static_cast<double>(write + read) * spill);
    }

    // Outputs: z written for the last-layer set; h/c read old state and
    // write new state for the RNN set.
    const auto &last = plan.gcn.back();
    const auto rnn_verts =
        static_cast<ByteCount>(plan.rnnVertices.size());
    dram.outputBytes =
        static_cast<ByteCount>(last.vertices.size()) * z_dim * bpv +
        rnn_verts * hidden * bpv * 2 + // write h, c
        rnn_verts * hidden * bpv * 2;  // read h^{t-1}, c^{t-1}
    return dram;
}

OpsBreakdown
countTotalOps(const graph::DynamicGraph &dg, const DgnnConfig &config,
              AlgoKind kind)
{
    IncrementalPlanner planner(dg, config, kind);
    OpsBreakdown total;
    for (SnapshotId t = 0; t < dg.numSnapshots(); ++t)
        total += countSnapshotOps(dg, t, config, planner.plan(t));
    return total;
}

DramBreakdown
countTotalDram(const graph::DynamicGraph &dg, const DgnnConfig &config,
               AlgoKind kind, const AccountingParams &params)
{
    IncrementalPlanner planner(dg, config, kind);
    DramBreakdown total;
    for (SnapshotId t = 0; t < dg.numSnapshots(); ++t)
        total += countSnapshotDram(dg, t, config, kind, planner.plan(t),
                                   params);
    return total;
}

} // namespace ditile::model
