/**
 * @file
 * Matrix implementation.
 */

#include "model/matrix.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ditile::model {

Matrix::Matrix(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            fill)
{
    DITILE_ASSERT(rows >= 0 && cols >= 0);
}

Matrix
Matrix::random(int rows, int cols, Rng &rng, float scale)
{
    Matrix m(rows, cols);
    for (float &v : m.data_)
        v = static_cast<float>(rng.uniformReal(-scale, scale));
    return m;
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    DITILE_ASSERT(cols_ == other.rows_, "matmul shape mismatch: ",
                  rows_, "x", cols_, " * ", other.rows_, "x", other.cols_);
    Matrix out(rows_, other.cols_);
    // Blocked over the output columns so the active slices of `other`
    // and `out` stay cache-resident across the k sweep. Per output
    // element the k-products still accumulate in ascending k, and the
    // zero skip is kept, so results are bit-identical to the naive
    // r-k-c loop.
    constexpr int kColBlock = 256;
    const int n = other.cols_;
    for (int r = 0; r < rows_; ++r) {
        const float *arow = row(r);
        float *orow = out.row(r);
        for (int cb = 0; cb < n; cb += kColBlock) {
            const int ce = std::min(n, cb + kColBlock);
            for (int k = 0; k < cols_; ++k) {
                const float a = arow[k];
                if (a == 0.0f)
                    continue;
                const float *brow = other.row(k) + cb;
                float *op = orow + cb;
                const int len = ce - cb;
                int c = 0;
                for (; c + 4 <= len; c += 4) {
                    op[c] += a * brow[c];
                    op[c + 1] += a * brow[c + 1];
                    op[c + 2] += a * brow[c + 2];
                    op[c + 3] += a * brow[c + 3];
                }
                for (; c < len; ++c)
                    op[c] += a * brow[c];
            }
        }
    }
    return out;
}

Matrix
Matrix::add(const Matrix &other) const
{
    DITILE_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
    Matrix out = *this;
    for (std::size_t i = 0; i < out.data_.size(); ++i)
        out.data_[i] += other.data_[i];
    return out;
}

Matrix
Matrix::hadamard(const Matrix &other) const
{
    DITILE_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
    Matrix out = *this;
    for (std::size_t i = 0; i < out.data_.size(); ++i)
        out.data_[i] *= other.data_[i];
    return out;
}

float
Matrix::maxAbsDiff(const Matrix &other) const
{
    DITILE_ASSERT(rows_ == other.rows_ && cols_ == other.cols_);
    float worst = 0.0f;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        const float d = std::fabs(data_[i] - other.data_[i]);
        if (d > worst)
            worst = d;
    }
    return worst;
}

float
sigmoid(float x)
{
    if (x >= 0.0f) {
        const float e = std::exp(-x);
        return 1.0f / (1.0f + e);
    }
    const float e = std::exp(x);
    return e / (1.0f + e);
}

} // namespace ditile::model
