/**
 * @file
 * Training-stage operation accounting (paper §4.1: "the proposed
 * methodology can be applied to the training stage where gradient and
 * embedding propagation follow graph structure as well").
 *
 * Training adds, per forward snapshot, a backward sweep whose gradient
 * flows traverse the same adjacency structure: gradients with respect
 * to the inputs re-run the gather (transposed), gradients with respect
 * to the weights re-run the combination, and the recurrent kernel
 * backpropagates through time within the snapshot window. The
 * redundancy-elimination plans apply unchanged because unchanged
 * vertices contribute unchanged gradients.
 */

#ifndef DITILE_MODEL_TRAINING_HH
#define DITILE_MODEL_TRAINING_HH

#include "model/accounting.hh"

namespace ditile::model {

/**
 * Operation counts for one training iteration (forward + backward +
 * weight update) over the whole dynamic graph.
 */
struct TrainingOps
{
    OpsBreakdown forward;
    OpsBreakdown backward;
    OpCount weightUpdateOps = 0;

    OpCount
    totalArithmetic() const
    {
        return forward.totalArithmetic() + backward.totalArithmetic()
            + weightUpdateOps;
    }
};

/**
 * Count one training iteration under the given update algorithm.
 *
 * Backward gathers/combinations mirror the forward plan (input- and
 * weight-gradient products double the MAC count); the weight update
 * costs one multiply-add per parameter per snapshot that touched it.
 */
TrainingOps countTrainingOps(const graph::DynamicGraph &dg,
                             const DgnnConfig &config, AlgoKind kind);

} // namespace ditile::model

#endif // DITILE_MODEL_TRAINING_HH
