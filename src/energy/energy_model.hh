/**
 * @file
 * Per-event energy model (Horowitz 45 nm table substitute).
 *
 * The paper estimates energy from on/off-chip communication and
 * computation counts "according to the analytical model proposed in
 * [Horowitz, ISSCC'14 energy table for a 45 nm process]". This module
 * encodes those per-event costs and converts raw event counts into the
 * four energy categories of Figure 12: computation, off-chip
 * communication, on-chip communication, and control/configuration.
 */

#ifndef DITILE_ENERGY_ENERGY_MODEL_HH
#define DITILE_ENERGY_ENERGY_MODEL_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace ditile::energy {

/**
 * Per-event costs in picojoules, 45 nm class.
 */
struct EnergyTable
{
    // Computation (Horowitz ISSCC'14, 45 nm).
    double fp32AddPj = 0.9;
    double fp32MulPj = 3.7;
    double fp32MacPj = 4.6;      ///< Fused multiply-accumulate.
    double activationPj = 4.0;   ///< ReLU/sigmoid/tanh via LUT+ALU.

    // On-chip storage, per byte, by capacity class.
    double sramSmallPjPerByte = 1.25;  ///< <= 32 KB (PE local buffer).
    double sramMediumPjPerByte = 2.5;  ///< <= 512 KB (reuse FIFO).
    double sramLargePjPerByte = 6.0;   ///< > 512 KB (distributed buffer).

    // On-chip network, per byte.
    double nocLinkPjPerByte = 0.6;   ///< One link traversal.
    double nocRouterPjPerByte = 1.0; ///< One router traversal.

    // Off-chip, per byte (~640 pJ per 32-bit word).
    double dramPjPerByte = 160.0;
    double dramActivatePj = 909.0;   ///< Per row activate.

    // Control.
    double reconfigEventPj = 5000.0; ///< One Re-Link reconfiguration.
    double controlPerOpPj = 0.02;    ///< Sequencing overhead per op.

    /**
     * Controller/dispatcher energy as a fraction of the datapath
     * energy (compute + on-chip + off-chip): clocking, instruction
     * issue and configuration distribution track overall activity.
     */
    double controlOverheadFraction = 0.04;

    /** SRAM cost per byte for a buffer of the given capacity. */
    double sramPjPerByte(ByteCount buffer_bytes) const;
};

/**
 * Raw event counts the accelerator models produce.
 */
struct EnergyEvents
{
    OpCount macs = 0;
    OpCount aluOps = 0;          ///< Element-wise adds/multiplies.
    OpCount activations = 0;
    ByteCount localBufferBytes = 0;   ///< PE local buffer traffic.
    ByteCount reuseFifoBytes = 0;     ///< Reuse FIFO traffic.
    ByteCount distBufferBytes = 0;    ///< Distributed buffer traffic.
    ByteCount nocLinkBytes = 0;       ///< Sum of bytes x links.
    ByteCount nocRouterBytes = 0;     ///< Sum of bytes x router stops.
    ByteCount dramBytes = 0;
    std::uint64_t dramActivates = 0;
    std::uint64_t reconfigEvents = 0;

    EnergyEvents &operator+=(const EnergyEvents &o);
};

/**
 * Figure-12 energy categories, picojoules.
 */
struct EnergyBreakdown
{
    double computePj = 0.0;
    double onChipCommPj = 0.0;
    double offChipCommPj = 0.0;
    double controlPj = 0.0;

    double
    totalPj() const
    {
        return computePj + onChipCommPj + offChipCommPj + controlPj;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);

    /** Export into a StatSet for report merging. */
    StatSet toStats() const;
};

/** Convert event counts to the Figure-12 categories. */
EnergyBreakdown computeEnergy(const EnergyEvents &events,
                              const EnergyTable &table = {});

/**
 * Scale a table's arithmetic costs for a narrower datapath (Horowitz
 * 45 nm: FP16 multiply ~1.1 pJ, INT8 ~0.2 pJ vs FP32's 3.7 pJ;
 * per-byte storage/transport costs are width-independent — narrower
 * values simply move fewer bytes).
 *
 * @param compute_scale 1.0 for FP32, ~0.27 FP16, ~0.07 INT8.
 */
EnergyTable scaleComputeEnergy(const EnergyTable &table,
                               double compute_scale);

} // namespace ditile::energy

#endif // DITILE_ENERGY_ENERGY_MODEL_HH
