/**
 * @file
 * Energy model implementation.
 */

#include "energy/energy_model.hh"

namespace ditile::energy {

double
EnergyTable::sramPjPerByte(ByteCount buffer_bytes) const
{
    if (buffer_bytes <= (32u << 10))
        return sramSmallPjPerByte;
    if (buffer_bytes <= (512u << 10))
        return sramMediumPjPerByte;
    return sramLargePjPerByte;
}

EnergyEvents &
EnergyEvents::operator+=(const EnergyEvents &o)
{
    macs += o.macs;
    aluOps += o.aluOps;
    activations += o.activations;
    localBufferBytes += o.localBufferBytes;
    reuseFifoBytes += o.reuseFifoBytes;
    distBufferBytes += o.distBufferBytes;
    nocLinkBytes += o.nocLinkBytes;
    nocRouterBytes += o.nocRouterBytes;
    dramBytes += o.dramBytes;
    dramActivates += o.dramActivates;
    reconfigEvents += o.reconfigEvents;
    return *this;
}

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    computePj += o.computePj;
    onChipCommPj += o.onChipCommPj;
    offChipCommPj += o.offChipCommPj;
    controlPj += o.controlPj;
    return *this;
}

StatSet
EnergyBreakdown::toStats() const
{
    StatSet s;
    s.set("energy.compute_pj", computePj);
    s.set("energy.onchip_comm_pj", onChipCommPj);
    s.set("energy.offchip_comm_pj", offChipCommPj);
    s.set("energy.control_pj", controlPj);
    s.set("energy.total_pj", totalPj());
    return s;
}

EnergyTable
scaleComputeEnergy(const EnergyTable &table, double compute_scale)
{
    EnergyTable scaled = table;
    scaled.fp32AddPj *= compute_scale;
    scaled.fp32MulPj *= compute_scale;
    scaled.fp32MacPj *= compute_scale;
    scaled.activationPj *= compute_scale;
    return scaled;
}

EnergyBreakdown
computeEnergy(const EnergyEvents &events, const EnergyTable &table)
{
    EnergyBreakdown e;
    e.computePj =
        static_cast<double>(events.macs) * table.fp32MacPj +
        static_cast<double>(events.aluOps) * table.fp32AddPj +
        static_cast<double>(events.activations) * table.activationPj;

    e.onChipCommPj =
        static_cast<double>(events.localBufferBytes) *
            table.sramSmallPjPerByte +
        static_cast<double>(events.reuseFifoBytes) *
            table.sramMediumPjPerByte +
        static_cast<double>(events.distBufferBytes) *
            table.sramLargePjPerByte +
        static_cast<double>(events.nocLinkBytes) * table.nocLinkPjPerByte +
        static_cast<double>(events.nocRouterBytes) *
            table.nocRouterPjPerByte;

    e.offChipCommPj =
        static_cast<double>(events.dramBytes) * table.dramPjPerByte +
        static_cast<double>(events.dramActivates) * table.dramActivatePj;

    const double total_ops = static_cast<double>(
        events.macs + events.aluOps + events.activations);
    e.controlPj =
        static_cast<double>(events.reconfigEvents) *
            table.reconfigEventPj +
        total_ops * table.controlPerOpPj +
        table.controlOverheadFraction *
            (e.computePj + e.onChipCommPj + e.offChipCommPj);
    return e;
}

} // namespace ditile::energy
