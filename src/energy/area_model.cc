/**
 * @file
 * Area model implementation.
 */

#include "energy/area_model.hh"

namespace ditile::energy {

AreaUm2
PeArea::total() const
{
    return macArray + localBuffer + ppu + dispatcher + control;
}

AreaUm2
TileArea::total() const
{
    return peArray + distBuffer + reuseFifo + mesh + control;
}

AreaUm2
ChipArea::total() const
{
    return tileArray + onChipBuffer + noc + logic;
}

StatSet
ChipArea::toStats() const
{
    StatSet s;
    const double chip = total();
    s.set("area.chip_um2", chip);
    s.set("area.frac.tiles", tileArray / chip);
    s.set("area.frac.onchip_buffer", onChipBuffer / chip);
    s.set("area.frac.noc", noc / chip);
    s.set("area.frac.logic", logic / chip);

    const double t = tile.total();
    s.set("area.tile_um2", t);
    s.set("area.tile.frac.pe_array", tile.peArray / t);
    s.set("area.tile.frac.dist_buffer", tile.distBuffer / t);
    s.set("area.tile.frac.reuse_fifo", tile.reuseFifo / t);
    s.set("area.tile.frac.mesh", tile.mesh / t);
    s.set("area.tile.frac.control", tile.control / t);

    const double p = tile.pe.total();
    s.set("area.pe_um2", p);
    s.set("area.pe.frac.mac_array", tile.pe.macArray / p);
    s.set("area.pe.frac.local_buffer", tile.pe.localBuffer / p);
    s.set("area.pe.frac.ppu", tile.pe.ppu / p);
    s.set("area.pe.frac.dispatcher", tile.pe.dispatcher / p);
    s.set("area.pe.frac.control", tile.pe.control / p);
    return s;
}

ChipArea
computeArea(const AreaConfig &config, const AreaParams &params)
{
    ChipArea chip;
    TileArea &tile = chip.tile;
    PeArea &pe = tile.pe;

    pe.macArray = params.macUm2 * config.macsPerPe;
    pe.localBuffer = params.localBufUm2PerByte *
        static_cast<double>(config.localBufferBytes);
    pe.ppu = params.ppuUm2;
    pe.dispatcher = params.dispatcherUm2;
    pe.control = params.peControlUm2;

    tile.peArray = pe.total() * config.pesPerTile;
    tile.distBuffer = params.distBufUm2PerByte *
        static_cast<double>(config.distBufferBytes);
    tile.reuseFifo = params.fifoUm2PerByte *
        static_cast<double>(config.reuseFifoBytes);
    tile.mesh = params.peMeshRouterUm2 * config.pesPerTile;
    tile.control = params.tileControlUm2;

    chip.tileArray = tile.total() * config.tiles;
    chip.onChipBuffer = params.globalBufferUm2;
    chip.noc = params.tileRouterUm2 * config.tiles;
    chip.logic = params.chipLogicUm2;
    return chip;
}

} // namespace ditile::energy
