/**
 * @file
 * Area model for the Figure-14 breakdowns.
 *
 * The paper synthesizes the design with Synopsys DC on TSMC 45 nm and
 * sizes buffers with CACTI 6.0; neither tool is available offline, so
 * this module ships per-component area constants calibrated to the 45 nm
 * class (MAC/SRAM/router footprints) and composes them structurally from
 * the accelerator configuration. The calibration reproduces the
 * hierarchy of Figure 14: chip = tiles + on-chip buffer + NoC + logic;
 * tile = PE array + distributed buffer + reuse FIFO + PE mesh + control;
 * PE = MAC array + local buffer + PPU/dispatcher + control.
 */

#ifndef DITILE_ENERGY_AREA_MODEL_HH
#define DITILE_ENERGY_AREA_MODEL_HH

#include "common/stats.hh"
#include "common/types.hh"

namespace ditile::energy {

/**
 * Per-component area constants (um^2, 45 nm class).
 */
struct AreaParams
{
    double macUm2 = 8000.0;            ///< FP32 multiply-accumulate.
    double ppuUm2 = 24000.0;           ///< Post-processing unit per PE.
    double dispatcherUm2 = 7900.0;     ///< PE data dispatcher.
    double peControlUm2 = 4300.0;      ///< PE-local control.
    double localBufUm2PerByte = 0.1957;
    double distBufUm2PerByte = 0.3859; ///< Wider-port tile SRAM.
    double fifoUm2PerByte = 0.8805;    ///< Double-buffered reuse FIFO.
    double peMeshRouterUm2 = 8192.0;   ///< Intra-tile mesh stop per PE.
    double tileControlUm2 = 39893.0;   ///< Tile controller + Re-Link mux.
    double tileRouterUm2 = 410212.0;   ///< Chip-level router + links.
    double globalBufferUm2 = 294415286.0; ///< Chip-level on-chip buffer.
    double chipLogicUm2 = 16877309.0;  ///< Dispatcher/adjuster/controller.
};

/**
 * Structural configuration the areas are composed from.
 */
struct AreaConfig
{
    int tiles = 256;             ///< 16 x 16 array.
    int pesPerTile = 16;         ///< 4 x 4 PEs.
    int macsPerPe = 16;          ///< 4 x 4 MAC array.
    ByteCount localBufferBytes = 256u << 10;
    ByteCount distBufferBytes = 4u << 20;
    ByteCount reuseFifoBytes = 512u << 10;
};

/** Figure 14 (c): PE-level breakdown. */
struct PeArea
{
    AreaUm2 macArray = 0;
    AreaUm2 localBuffer = 0;
    AreaUm2 ppu = 0;
    AreaUm2 dispatcher = 0;
    AreaUm2 control = 0;
    AreaUm2 total() const;
};

/** Figure 14 (b): tile-level breakdown. */
struct TileArea
{
    PeArea pe;
    AreaUm2 peArray = 0;
    AreaUm2 distBuffer = 0;
    AreaUm2 reuseFifo = 0;
    AreaUm2 mesh = 0;
    AreaUm2 control = 0;
    AreaUm2 total() const;
};

/** Figure 14 (a): chip-level breakdown. */
struct ChipArea
{
    TileArea tile;
    AreaUm2 tileArray = 0;
    AreaUm2 onChipBuffer = 0;
    AreaUm2 noc = 0;
    AreaUm2 logic = 0;
    AreaUm2 total() const;

    /** Export every level as fractional stats for the bench. */
    StatSet toStats() const;
};

/** Compose the full area hierarchy. */
ChipArea computeArea(const AreaConfig &config = {},
                     const AreaParams &params = {});

} // namespace ditile::energy

#endif // DITILE_ENERGY_AREA_MODEL_HH
