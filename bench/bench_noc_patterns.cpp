/**
 * @file
 * NoC characterization: every interconnect style under the standard
 * synthetic traffic patterns plus the two DGNN-shaped ones.
 *
 * Shows why the paper splits traffic across the two ring layers: the
 * reconfigurable topology wins column-gather (spatial) traffic via
 * Re-Link bypasses and matches the ring on row-shift
 * (temporal/reuse) traffic, while the mesh pays full per-hop router
 * costs and the crossbar concentrates on hotspots.
 */

#include "bench/bench_util.hh"
#include "noc/network.hh"
#include "noc/traffic_patterns.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);
    constexpr int kRows = 16;
    constexpr int kCols = 16;
    constexpr std::size_t kMessages = 2048;
    constexpr ByteCount kBytes = 512;

    Table table("NoC makespan (cycles) by topology and pattern, "
                "16x16, 2048 x 512B");
    table.setHeader({"Pattern", "Mesh", "Ring", "Crossbar",
                     "Reconfigurable"});
    for (noc::TrafficPattern pattern : noc::allTrafficPatterns()) {
        std::vector<std::string> row = {
            noc::trafficPatternName(pattern)};
        for (noc::TopologyKind kind :
             {noc::TopologyKind::Mesh, noc::TopologyKind::Ring,
              noc::TopologyKind::Crossbar,
              noc::TopologyKind::Reconfigurable}) {
            noc::NocConfig config;
            config.rows = kRows;
            config.cols = kCols;
            config.topology = kind;
            Rng rng(7); // same batch per topology.
            auto msgs = noc::generateTraffic(pattern, kRows, kCols,
                                             kMessages, kBytes, rng);
            const auto res = noc::simulateTraffic(config,
                                                  std::move(msgs));
            row.push_back(Table::integer(static_cast<long long>(
                res.makespan)));
        }
        table.addRow(row);
    }
    bench::emit(table, options);
    return 0;
}
