/**
 * @file
 * Figure 11 (a): PE utilization of every accelerator on the WD
 * dataset.
 *
 * Paper result: DiTile-DGNN improves PE utilization by 23.8% on
 * average over the baselines, thanks to the homogeneous tile design
 * and the workload balance optimization.
 */

#include <memory>

#include "bench/bench_util.hh"
#include "core/ditile_accelerator.hh"
#include "sim/baselines.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv);
    // Figure 11 uses the WD dataset unless overridden.
    if (options.datasets.size() > 1)
        options.datasets = {"WD"};
    const auto mconfig = bench::paperModel();

    std::vector<std::unique_ptr<sim::Accelerator>> accelerators;
    accelerators.push_back(sim::makeReady());
    accelerators.push_back(sim::makeDgnnBooster());
    accelerators.push_back(sim::makeRace());
    accelerators.push_back(sim::makeMega());
    accelerators.push_back(std::make_unique<core::DiTileAccelerator>());

    Table table("Figure 11a: PE utilization (WD)");
    table.setHeader({"Accelerator", "PE utilization",
                     "DiTile improvement"});

    const auto dg = graph::makeDataset(options.datasets.front(),
                                       options.datasetOptions());
    std::vector<double> utils;
    for (auto &acc : accelerators)
        utils.push_back(acc->run(dg, mconfig).peUtilization);

    const double ditile_util = utils.back();
    double improvement_sum = 0.0;
    for (std::size_t i = 0; i < accelerators.size(); ++i) {
        const bool baseline = i + 1 < accelerators.size();
        const double gain = baseline && utils[i] > 0.0
            ? ditile_util / utils[i] - 1.0 : 0.0;
        if (baseline)
            improvement_sum += gain;
        table.addRow({accelerators[i]->name(),
                      Table::percent(utils[i], 2),
                      baseline ? Table::percent(gain) : "-"});
    }
    table.addRow({"Average improvement", "",
                  Table::percent(improvement_sum / 4.0)});
    bench::emit(table, options);
    std::printf("paper: +23.8%% average PE utilization vs baselines "
                "on WD\n");
    return 0;
}
