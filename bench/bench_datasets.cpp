/**
 * @file
 * Table 1: the evaluation datasets, published metadata plus the
 * synthesized reproduction at the active scale.
 */

#include "bench/bench_util.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);

    Table table("Table 1: datasets (published vs synthesized)");
    table.setHeader({"Dataset", "Abbrev", "Vertices", "Edges",
                     "Features", "Description", "Scale", "Synth V",
                     "Synth E", "Dis"});
    for (const auto &name : options.datasets) {
        const auto &spec = graph::findDataset(name);
        const auto dg = graph::makeDataset(spec,
                                           options.datasetOptions());
        const double scale = options.scale > 0.0 ? options.scale
                                                 : spec.defaultScale;
        table.addRow({spec.name, spec.abbrev,
                      Table::integer(spec.vertices),
                      Table::integer(spec.edges),
                      Table::integer(spec.features), spec.description,
                      Table::num(scale, 4),
                      Table::integer(dg.numVertices()),
                      Table::integer(static_cast<long long>(
                          dg.avgEdges())),
                      Table::percent(dg.avgDissimilarity())});
    }
    bench::emit(table, options);
    return 0;
}
