/**
 * @file
 * Figure 8: off-chip DRAM access volume per algorithm per dataset.
 *
 * Paper result: DiTile reduces DRAM access by 58.1%, 26.6% and 33.5%
 * on average versus the Re-Alg, Race-Alg and Mega-Alg baselines.
 */

#include "bench/bench_util.hh"
#include "model/accounting.hh"
#include "sim/accel_config.hh"
#include "sim/baselines.hh"
#include "tiling/optimizer.hh"
#include "tiling/subgraph_former.hh"

using namespace ditile;

namespace {

/** Refetch factor per algorithm: DiTile uses Algorithm 1's tiling. */
model::AccountingParams
paramsFor(model::AlgoKind kind, const graph::DynamicGraph &dg,
          const model::DgnnConfig &mconfig,
          const sim::AcceleratorConfig &hw)
{
    model::AccountingParams params;
    if (kind == model::AlgoKind::DiTileAlg) {
        int dims = dg.featureDim();
        for (int d : mconfig.gcnDims)
            dims += d;
        dims += 2 * mconfig.lstmHidden;
        const auto app = tiling::ApplicationFeatures::fromGraph(
            dg, mconfig.numGcnLayers(), dims, mconfig.bytesPerValue);
        tiling::HardwareFeatures thw;
        thw.totalTiles = hw.totalTiles();
        thw.distributedBufferBytes = hw.distBufferBytes;
        // Measure the optimized tiling's real cross fraction from a
        // concrete BFS subgraph formation on the first snapshot.
        const auto tiled = tiling::optimizeTiling(app, thw);
        params.crossFetchFraction = tiling::formSubgraphs(
            dg.snapshot(0), tiled.tilingFactor)
            .crossAdjacencyFraction;
    } else {
        params.crossFetchFraction =
            sim::baselineCrossFetchFraction(dg, mconfig, hw);
    }
    return params;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto mconfig = bench::paperModel();
    const auto hw = sim::AcceleratorConfig::defaults();

    Table table("Figure 8: DRAM access bytes (lower is better)");
    table.setHeader({"Dataset", "Re-Alg", "Race-Alg", "Mega-Alg",
                     "DiTile", "vs Re", "vs Race", "vs Mega"});

    double sum[4] = {0, 0, 0, 0};
    double ratio_sum[3] = {0, 0, 0};
    int rows = 0;
    for (const auto &name : options.datasets) {
        const auto dg = graph::makeDataset(name,
                                           options.datasetOptions());
        double bytes[4];
        int idx = 0;
        for (model::AlgoKind kind : model::allAlgorithms()) {
            const auto params = paramsFor(kind, dg, mconfig, hw);
            bytes[idx] = static_cast<double>(
                model::countTotalDram(dg, mconfig, kind, params)
                    .total());
            sum[idx] += bytes[idx];
            ++idx;
        }
        ratio_sum[0] += 1.0 - bytes[3] / bytes[0];
        ratio_sum[1] += 1.0 - bytes[3] / bytes[1];
        ratio_sum[2] += 1.0 - bytes[3] / bytes[2];
        ++rows;
        table.addRow({dg.name(), Table::sci(bytes[0]),
                      Table::sci(bytes[1]), Table::sci(bytes[2]),
                      Table::sci(bytes[3]),
                      bench::reduction(bytes[3], bytes[0]),
                      bench::reduction(bytes[3], bytes[1]),
                      bench::reduction(bytes[3], bytes[2])});
    }
    if (rows > 1) {
        table.addRow({"Average", Table::sci(sum[0] / rows),
                      Table::sci(sum[1] / rows),
                      Table::sci(sum[2] / rows),
                      Table::sci(sum[3] / rows),
                      Table::percent(ratio_sum[0] / rows),
                      Table::percent(ratio_sum[1] / rows),
                      Table::percent(ratio_sum[2] / rows)});
    }
    bench::emit(table, options);
    std::printf("paper: 58.1%% vs Re-Alg, 26.6%% vs Race-Alg, "
                "33.5%% vs Mega-Alg (average)\n");
    return 0;
}
