/**
 * @file
 * Extension bench: multi-chip scale-out curves.
 *
 * Records the three curves the scale-out layer (sim/scaleout.hh) is
 * judged by, into one CSV-able table:
 *
 *   - weak scaling: the workload grows with the chip count (V and E
 *     proportional to M), so ideal scaling keeps cycles constant;
 *     efficiency = cycles(1 chip) / cycles(M chips).
 *   - strong scaling: one fixed workload over M = 1..8 chips;
 *     speedup = cycles(1) / cycles(M), efficiency = speedup / M.
 *   - interconnect sensitivity: the fixed workload on 4 chips under a
 *     bandwidth sweep and a latency sweep, isolating how much of the
 *     cluster makespan the inter-chip links govern.
 *
 * All runs share one PlanCache, so repeated shards plan once. Every
 * number is bit-identical at any --threads width. --smoke shrinks the
 * synthetic workloads for CI.
 */

#include <string>

#include "bench/bench_util.hh"
#include "core/ditile_accelerator.hh"
#include "graph/generator.hh"
#include "sim/execution_plan.hh"
#include "sim/plan_cache.hh"
#include "sim/scaleout.hh"

using namespace ditile;

namespace {

graph::DynamicGraph
makeWorkload(VertexId vertices, EdgeId edges, SnapshotId snapshots,
             std::uint64_t seed)
{
    graph::EvolutionConfig config;
    config.name = "scaleout-v" + std::to_string(vertices);
    config.numVertices = vertices;
    config.numEdges = edges;
    config.numSnapshots = snapshots;
    config.dissimilarity = 0.10;
    config.featureDim = 128;
    config.seed = seed;
    return graph::generateDynamicGraph(config);
}

Cycle
runChips(const graph::DynamicGraph &dg, int chips,
         const noc::InterChipLinkConfig &link, sim::PlanCache &cache)
{
    core::DiTileAccelerator ditile;
    auto plan = ditile.plan(dg, bench::paperModel(), &cache);
    if (chips > 1)
        sim::applyScaleOut(plan, dg, chips, link);
    return sim::executePlan(dg, plan, &cache).totalCycles;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);
    const VertexId base_v = options.smoke ? 1500 : 6000;
    const EdgeId base_e = options.smoke ? 9000 : 48000;
    const SnapshotId snapshots =
        options.smoke ? SnapshotId{4} : options.numSnapshots;
    const std::uint64_t seed = options.seed + 1;
    const noc::InterChipLinkConfig default_link;

    sim::PlanCache cache;
    Table table("Scale-out: weak / strong scaling + interconnect "
                "sensitivity");
    table.setHeader({"mode", "chips", "gbps", "latency_ns", "vertices",
                     "cycles", "speedup", "efficiency"});

    // ---- Weak scaling: workload grows with the cluster.
    double weak_base = 0.0;
    for (const int chips : {1, 2, 4, 8}) {
        const auto dg = makeWorkload(
            base_v * static_cast<VertexId>(chips),
            base_e * static_cast<EdgeId>(chips), snapshots, seed);
        const auto cycles = static_cast<double>(
            runChips(dg, chips, default_link, cache));
        if (chips == 1)
            weak_base = cycles;
        table.addRow({"weak", Table::integer(chips),
                      Table::num(default_link.bandwidthGbps, 0),
                      Table::num(default_link.latencyNs, 0),
                      Table::integer(static_cast<long long>(
                          dg.numVertices())),
                      Table::integer(static_cast<long long>(cycles)),
                      Table::num(weak_base / cycles, 4),
                      Table::num(weak_base / cycles, 4)});
    }

    // ---- Strong scaling: one fixed workload, more chips.
    const auto strong_dg =
        makeWorkload(base_v * 4, base_e * 4, snapshots, seed);
    double strong_base = 0.0;
    for (const int chips : {1, 2, 4, 8}) {
        const auto cycles = static_cast<double>(
            runChips(strong_dg, chips, default_link, cache));
        if (chips == 1)
            strong_base = cycles;
        const double speedup = strong_base / cycles;
        table.addRow({"strong", Table::integer(chips),
                      Table::num(default_link.bandwidthGbps, 0),
                      Table::num(default_link.latencyNs, 0),
                      Table::integer(static_cast<long long>(
                          strong_dg.numVertices())),
                      Table::integer(static_cast<long long>(cycles)),
                      Table::num(speedup, 4),
                      Table::num(speedup / chips, 4)});
    }

    // ---- Interconnect sensitivity on 4 chips: bandwidth sweep at
    // the default latency, then latency sweep at the default
    // bandwidth.
    for (const double gbps : {25.0, 100.0, 400.0, 1600.0}) {
        noc::InterChipLinkConfig link = default_link;
        link.bandwidthGbps = gbps;
        const auto cycles = static_cast<double>(
            runChips(strong_dg, 4, link, cache));
        table.addRow({"bandwidth", Table::integer(4),
                      Table::num(gbps, 0),
                      Table::num(link.latencyNs, 0),
                      Table::integer(static_cast<long long>(
                          strong_dg.numVertices())),
                      Table::integer(static_cast<long long>(cycles)),
                      Table::num(strong_base / cycles, 4), "n/a"});
    }
    for (const double latency_ns : {50.0, 350.0, 2000.0}) {
        noc::InterChipLinkConfig link = default_link;
        link.latencyNs = latency_ns;
        const auto cycles = static_cast<double>(
            runChips(strong_dg, 4, link, cache));
        table.addRow({"latency", Table::integer(4),
                      Table::num(link.bandwidthGbps, 0),
                      Table::num(latency_ns, 0),
                      Table::integer(static_cast<long long>(
                          strong_dg.numVertices())),
                      Table::integer(static_cast<long long>(cycles)),
                      Table::num(strong_base / cycles, 4), "n/a"});
    }

    bench::emit(table, options);
    return 0;
}
