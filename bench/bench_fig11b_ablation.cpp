/**
 * @file
 * Figure 11 (b): ablation of the three contributions on the WD
 * dataset.
 *
 * Paper result (execution-time increase over the full DiTile-DGNN):
 * NoPs +38.9%, NoWos +18.9%, NoRa +12.0%, OnlyPs +23.0%,
 * OnlyWos +45.9%, OnlyRa +68.8%.
 */

#include "bench/bench_util.hh"
#include "core/ditile_accelerator.hh"
#include "core/plan_batch.hh"
#include "sim/plan_cache.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv);
    if (options.datasets.size() > 1)
        options.datasets = {"WD"};
    const auto mconfig = bench::paperModel();
    const auto dg = graph::makeDataset(options.datasets.front(),
                                       options.datasetOptions());

    const std::vector<std::string> variants = {
        "full", "NoPs", "NoWos", "NoRa", "OnlyPs", "OnlyWos", "OnlyRa",
    };
    const std::vector<std::string> paper = {
        "-", "+38.9%", "+18.9%", "+12.0%", "+23.0%", "+45.9%",
        "+68.8%",
    };

    Table table("Figure 11b: ablation study (WD, execution time)");
    table.setHeader({"Variant", "Cycles", "vs full", "paper"});

    // All seven variants share the DiTile update algorithm, so the
    // expensive per-snapshot planning runs once and is replayed from
    // the cache for the other six; the shared front end likewise
    // builds the graph-determined prefix (workload loads +
    // Algorithm 1) once per distinct strategy instead of per variant.
    sim::PlanCache plan_cache;
    core::SharedFrontEnd shared;

    double full_cycles = 0.0;
    for (std::size_t i = 0; i < variants.size(); ++i) {
        core::DiTileAccelerator accel(
            sim::AcceleratorConfig::defaults(),
            core::DiTileOptions::fromVariant(variants[i]));
        const auto result = accel.execute(
            dg, accel.plan(dg, mconfig, &plan_cache, &shared));
        const auto cycles = static_cast<double>(result.totalCycles);
        if (i == 0)
            full_cycles = cycles;
        const double increase = cycles / full_cycles - 1.0;
        std::string delta = "-";
        if (i != 0) {
            delta = "+";
            delta += Table::percent(increase);
        }
        table.addRow({variants[i] == "full" ? "DiTile-DGNN"
                                            : variants[i],
                      Table::sci(cycles), delta, paper[i]});
    }
    bench::emit(table, options);
    sim::printCacheStats(stderr, plan_cache);
    return 0;
}
