/**
 * @file
 * Extension bench: training-iteration time per update algorithm.
 *
 * The paper's §4.1 notes the methodology "can be applied to the
 * training stage where gradient and embedding propagation follow
 * graph structure as well". This bench quantifies that claim: one
 * simulated training iteration (forward + backward + all-reduce +
 * update) per algorithm on each dataset, on the iso-resource engine.
 */

#include "bench/bench_util.hh"
#include "sim/training_engine.hh"
#include "core/ditile_accelerator.hh"
#include "graph/partition.hh"

using namespace ditile;

namespace {

sim::TrainingResult
trainWith(model::AlgoKind algo, const graph::DynamicGraph &dg,
          const model::DgnnConfig &mconfig)
{
    const auto hw = sim::AcceleratorConfig::defaults();
    sim::MappingSpec mapping;
    mapping.rowPartition = graph::VertexPartition::contiguous(
        dg.numVertices(), hw.tileRows);
    mapping.snapshotColumn.resize(
        static_cast<std::size_t>(dg.numSnapshots()));
    for (SnapshotId t = 0; t < dg.numSnapshots(); ++t)
        mapping.snapshotColumn[static_cast<std::size_t>(t)] =
            static_cast<int>(t % hw.tileCols);
    sim::EngineOptions options;
    options.algo = algo;
    options.accounting.crossFetchFraction =
        sim::baselineCrossFetchFraction(dg, mconfig, hw);
    return sim::runTrainingIteration(dg, mconfig, hw, mapping, options,
                                     model::algoName(algo));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto mconfig = bench::paperModel();

    Table table("Training extension: one iteration per algorithm "
                "(cycles)");
    table.setHeader({"Dataset", "Re-Alg", "Race-Alg", "Mega-Alg",
                     "DiTile (full design)", "vs Re"});
    for (const auto &name : options.datasets) {
        const auto dg = graph::makeDataset(name,
                                           options.datasetOptions());
        double cycles[4];
        int idx = 0;
        for (model::AlgoKind kind :
             {model::AlgoKind::ReAlg, model::AlgoKind::RaceAlg,
              model::AlgoKind::MegaAlg}) {
            cycles[idx++] = static_cast<double>(
                trainWith(kind, dg, mconfig).iterationCycles);
        }
        core::DiTileAccelerator ditile;
        cycles[3] = static_cast<double>(
            ditile.runTraining(dg, mconfig).iterationCycles);
        table.addRow({dg.name(), Table::sci(cycles[0]),
                      Table::sci(cycles[1]), Table::sci(cycles[2]),
                      Table::sci(cycles[3]),
                      bench::reduction(cycles[3], cycles[0])});
    }
    bench::emit(table, options);
    std::printf("paper (section 4.1): the redundancy-free methodology "
                "extends to training; no quantitative target given\n");
    return 0;
}
