/**
 * @file
 * Figure 14: area breakdown of the chip, one tile and one PE.
 *
 * Paper result: tiles 77.8% / buffer 15.7% / NoC 5.6% / logic 0.9%
 * of the chip; PE array 60.5% / distributed buffer 28.4% / reuse FIFO
 * 8.1% / mesh 2.3% / control 0.7% of a tile; MAC array 59.4% / local
 * buffer 23.8% / control 2.0% of a PE.
 */

#include "bench/bench_util.hh"
#include "energy/area_model.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto area = energy::computeArea();

    {
        Table table("Figure 14a: chip area breakdown");
        table.setHeader({"Component", "Area (mm^2)", "Share", "paper"});
        const double chip = area.total();
        table.addRow({"Tile array", Table::num(area.tileArray / 1e6),
                      Table::percent(area.tileArray / chip), "77.8%"});
        table.addRow({"On-chip buffer",
                      Table::num(area.onChipBuffer / 1e6),
                      Table::percent(area.onChipBuffer / chip),
                      "15.7%"});
        table.addRow({"Reconfigurable NoC", Table::num(area.noc / 1e6),
                      Table::percent(area.noc / chip), "5.6%"});
        table.addRow({"Logic components",
                      Table::num(area.logic / 1e6),
                      Table::percent(area.logic / chip), "0.9%"});
        bench::emit(table, options);
    }
    {
        Table table("Figure 14b: tile area breakdown");
        table.setHeader({"Component", "Area (mm^2)", "Share", "paper"});
        const double tile = area.tile.total();
        table.addRow({"PE array", Table::num(area.tile.peArray / 1e6),
                      Table::percent(area.tile.peArray / tile),
                      "60.5%"});
        table.addRow({"Distributed buffer",
                      Table::num(area.tile.distBuffer / 1e6),
                      Table::percent(area.tile.distBuffer / tile),
                      "28.4%"});
        table.addRow({"Reuse FIFO",
                      Table::num(area.tile.reuseFifo / 1e6),
                      Table::percent(area.tile.reuseFifo / tile),
                      "8.1%"});
        table.addRow({"PE mesh", Table::num(area.tile.mesh / 1e6),
                      Table::percent(area.tile.mesh / tile), "2.3%"});
        table.addRow({"Control logic",
                      Table::num(area.tile.control / 1e6),
                      Table::percent(area.tile.control / tile),
                      "0.7%"});
        bench::emit(table, options);
    }
    {
        Table table("Figure 14c: PE area breakdown");
        table.setHeader({"Component", "Area (um^2)", "Share", "paper"});
        const double pe = area.tile.pe.total();
        table.addRow({"MAC array", Table::num(area.tile.pe.macArray),
                      Table::percent(area.tile.pe.macArray / pe),
                      "59.4%"});
        table.addRow({"Local buffer",
                      Table::num(area.tile.pe.localBuffer),
                      Table::percent(area.tile.pe.localBuffer / pe),
                      "23.8%"});
        table.addRow({"PPU", Table::num(area.tile.pe.ppu),
                      Table::percent(area.tile.pe.ppu / pe), "-"});
        table.addRow({"Dispatcher",
                      Table::num(area.tile.pe.dispatcher),
                      Table::percent(area.tile.pe.dispatcher / pe),
                      "-"});
        table.addRow({"Control logic",
                      Table::num(area.tile.pe.control),
                      Table::percent(area.tile.pe.control / pe),
                      "2.0%"});
        bench::emit(table, options);
    }
    return 0;
}
