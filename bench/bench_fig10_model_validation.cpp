/**
 * @file
 * Figure 10: analytical model vs simulation.
 *
 * Paper result: the simulated off-chip DRAM access exceeds the
 * analytical estimate by ~5% on average, the simulated on-chip data
 * transfer by ~9%, across the six datasets — the gap being the
 * sparsity/size variance the uniform-subgraph model ignores.
 */

#include "bench/bench_util.hh"
#include "core/analytical_estimator.hh"
#include "core/ditile_accelerator.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto mconfig = bench::paperModel();

    Table table("Figure 10: analytical estimate vs simulation "
                "(normalized to the estimate)");
    table.setHeader({"Dataset", "Alg-DA (B)", "Actual-DA (B)",
                     "DA ratio", "Alg-OT (B)", "Actual-OT (B)",
                     "OT ratio"});

    double da_sum = 0.0;
    double ot_sum = 0.0;
    int rows = 0;
    for (const auto &name : options.datasets) {
        const auto dg = graph::makeDataset(name,
                                           options.datasetOptions());
        core::DiTileAccelerator accel;
        const auto result = accel.run(dg, mconfig);

        int boundaries = 0;
        const auto &cols = accel.lastMapping().snapshotColumn;
        for (std::size_t t = 1; t < cols.size(); ++t)
            if (cols[t] != cols[t - 1])
                ++boundaries;

        const auto est = core::estimateTraffic(dg, mconfig,
                                               accel.lastPlan(),
                                               boundaries);
        const double actual_da =
            static_cast<double>(result.dramTraffic.total());
        const double actual_ot = static_cast<double>(result.nocBytes);
        const double da_ratio = est.dramBytes > 0.0
            ? actual_da / est.dramBytes : 0.0;
        const double ot_ratio = est.onChipBytes > 0.0
            ? actual_ot / est.onChipBytes : 0.0;
        da_sum += da_ratio;
        ot_sum += ot_ratio;
        ++rows;
        table.addRow({dg.name(), Table::sci(est.dramBytes),
                      Table::sci(actual_da), Table::num(da_ratio),
                      Table::sci(est.onChipBytes),
                      Table::sci(actual_ot), Table::num(ot_ratio)});
    }
    if (rows > 1) {
        table.addRow({"Average", "", "",
                      Table::num(da_sum / rows), "", "",
                      Table::num(ot_sum / rows)});
    }
    bench::emit(table, options);
    std::printf("paper: actual exceeds estimate by ~5%% (DA) and "
                "~9%% (OT) on average\n");
    return 0;
}
