/**
 * @file
 * Figure 12: normalized energy-consumption breakdown.
 *
 * Paper result: DiTile-DGNN reduces total energy by 83.4%, 84.0%,
 * 75.6% and 71.4% on average versus ReaDy, DGNN-Booster, RACE and
 * MEGA; control/configuration stays below 7% of DiTile's total.
 */

#include <memory>

#include "bench/bench_util.hh"
#include "core/ditile_accelerator.hh"
#include "sim/baselines.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto mconfig = bench::paperModel();

    std::vector<std::unique_ptr<sim::Accelerator>> accelerators;
    accelerators.push_back(sim::makeReady());
    accelerators.push_back(sim::makeDgnnBooster());
    accelerators.push_back(sim::makeRace());
    accelerators.push_back(sim::makeMega());
    accelerators.push_back(std::make_unique<core::DiTileAccelerator>());

    Table table("Figure 12: energy breakdown, normalized to "
                "DiTile-DGNN per dataset");
    table.setHeader({"Dataset", "Accelerator", "Compute", "Off-chip",
                     "On-chip", "Control", "Total (x DiTile)"});

    double ratio_sum[4] = {0, 0, 0, 0};
    double ditile_control_sum = 0.0;
    int rows = 0;
    for (const auto &name : options.datasets) {
        const auto dg = graph::makeDataset(name,
                                           options.datasetOptions());
        std::vector<energy::EnergyBreakdown> breakdowns;
        for (auto &acc : accelerators)
            breakdowns.push_back(acc->run(dg, mconfig).energy);
        const double base = breakdowns.back().totalPj();
        for (std::size_t i = 0; i < accelerators.size(); ++i) {
            const auto &e = breakdowns[i];
            table.addRow({name, accelerators[i]->name(),
                          Table::num(e.computePj / base),
                          Table::num(e.offChipCommPj / base),
                          Table::num(e.onChipCommPj / base),
                          Table::num(e.controlPj / base),
                          Table::num(e.totalPj() / base)});
            if (i + 1 < accelerators.size())
                ratio_sum[i] += 1.0 - base / e.totalPj();
        }
        ditile_control_sum += breakdowns.back().controlPj / base;
        ++rows;
    }
    bench::emit(table, options);
    if (rows > 0) {
        std::printf("average energy reduction: %.1f%% vs ReaDy, "
                    "%.1f%% vs DGNN-Booster, %.1f%% vs RACE, "
                    "%.1f%% vs MEGA; DiTile control share %.1f%%\n",
                    100.0 * ratio_sum[0] / rows,
                    100.0 * ratio_sum[1] / rows,
                    100.0 * ratio_sum[2] / rows,
                    100.0 * ratio_sum[3] / rows,
                    100.0 * ditile_control_sum / rows);
    }
    std::printf("paper: 83.4%% / 84.0%% / 75.6%% / 71.4%% average "
                "reductions; control < 7%%\n");
    return 0;
}
