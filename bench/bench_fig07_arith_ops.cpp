/**
 * @file
 * Figure 7: arithmetic operations per algorithm per dataset.
 *
 * Paper result: DiTile-Alg reduces arithmetic operations by 65.7%,
 * 33.9% and 26.4% on average versus Re-Alg, Race-Alg and Mega-Alg.
 */

#include "bench/bench_util.hh"
#include "model/accounting.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto mconfig = bench::paperModel();

    Table table("Figure 7: arithmetic operations (lower is better)");
    table.setHeader({"Dataset", "Re-Alg", "Race-Alg", "Mega-Alg",
                     "DiTile", "vs Re", "vs Race", "vs Mega"});

    double sum[4] = {0, 0, 0, 0};
    double ratio_sum[3] = {0, 0, 0};
    int rows = 0;
    for (const auto &name : options.datasets) {
        const auto dg = graph::makeDataset(name,
                                           options.datasetOptions());
        double ops[4];
        int idx = 0;
        for (model::AlgoKind kind : model::allAlgorithms()) {
            ops[idx] = static_cast<double>(
                model::countTotalOps(dg, mconfig, kind)
                    .totalArithmetic());
            sum[idx] += ops[idx];
            ++idx;
        }
        ratio_sum[0] += 1.0 - ops[3] / ops[0];
        ratio_sum[1] += 1.0 - ops[3] / ops[1];
        ratio_sum[2] += 1.0 - ops[3] / ops[2];
        ++rows;
        table.addRow({dg.name(), Table::sci(ops[0]), Table::sci(ops[1]),
                      Table::sci(ops[2]), Table::sci(ops[3]),
                      bench::reduction(ops[3], ops[0]),
                      bench::reduction(ops[3], ops[1]),
                      bench::reduction(ops[3], ops[2])});
    }
    if (rows > 1) {
        table.addRow({"Average", Table::sci(sum[0] / rows),
                      Table::sci(sum[1] / rows),
                      Table::sci(sum[2] / rows),
                      Table::sci(sum[3] / rows),
                      Table::percent(ratio_sum[0] / rows),
                      Table::percent(ratio_sum[1] / rows),
                      Table::percent(ratio_sum[2] / rows)});
    }
    bench::emit(table, options);
    std::printf("paper: 65.7%% vs Re-Alg, 33.9%% vs Race-Alg, "
                "26.4%% vs Mega-Alg (average)\n");
    return 0;
}
