/**
 * @file
 * Extension bench: numeric-precision sweep.
 *
 * The paper fixes FP32 (§7.1, citing its sufficiency for inference
 * accuracy); this bench quantifies what FP16/INT8 would buy on the
 * DiTile-DGNN design: every moved byte halves/quarters and the
 * arithmetic energy drops per the 45 nm cost ratios.
 */

#include "bench/bench_util.hh"
#include "core/ditile_accelerator.hh"
#include "energy/energy_model.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv);
    if (options.datasets.size() > 1)
        options.datasets = {"WD", "TW"};

    Table table("Precision sweep on DiTile-DGNN");
    table.setHeader({"Dataset", "Precision", "Cycles", "DRAM bytes",
                     "Energy (uJ)", "vs FP32 time", "vs FP32 energy"});
    for (const auto &name : options.datasets) {
        const auto dg = graph::makeDataset(name,
                                           options.datasetOptions());
        double base_cycles = 0.0;
        double base_energy = 0.0;
        for (auto [precision, compute_scale] :
             {std::pair{model::Precision::Fp32, 1.0},
              std::pair{model::Precision::Fp16, 0.27},
              std::pair{model::Precision::Int8, 0.07}}) {
            const auto mconfig =
                bench::paperModel().withPrecision(precision);
            auto hw = sim::AcceleratorConfig::defaults();
            hw.energyTable = energy::scaleComputeEnergy(
                hw.energyTable, compute_scale);
            core::DiTileAccelerator accel(hw);
            const auto r = accel.run(dg, mconfig);
            const auto cycles = static_cast<double>(r.totalCycles);
            const double joules = r.energy.totalPj();
            if (precision == model::Precision::Fp32) {
                base_cycles = cycles;
                base_energy = joules;
            }
            table.addRow({dg.name(),
                          model::precisionName(precision),
                          Table::sci(cycles),
                          Table::sci(static_cast<double>(
                              r.dramTraffic.total())),
                          Table::num(joules / 1e6, 1),
                          Table::num(base_cycles / cycles, 2) + "x",
                          Table::num(base_energy / joules, 2) + "x"});
        }
    }
    bench::emit(table, options);
    std::printf("paper uses FP32 throughout; narrower formats are an "
                "extension study\n");
    return 0;
}
