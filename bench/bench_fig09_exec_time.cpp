/**
 * @file
 * Figure 9: execution time of ReaDy, DGNN-Booster, RACE, MEGA and
 * DiTile-DGNN per dataset.
 *
 * Paper result: DiTile-DGNN reduces execution time by 48.4%, 56.1%,
 * 23.2% and 36.1% on average versus ReaDy, DGNN-Booster, RACE and
 * MEGA (speedups of 1.9-2.5x, 1.7-2.7x, 1.3-3.0x and 1.6-2.1x).
 */

#include <memory>

#include "bench/bench_util.hh"
#include "core/ditile_accelerator.hh"
#include "sim/baselines.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto mconfig = bench::paperModel();

    std::vector<std::unique_ptr<sim::Accelerator>> accelerators;
    accelerators.push_back(sim::makeReady());
    accelerators.push_back(sim::makeDgnnBooster());
    accelerators.push_back(sim::makeRace());
    accelerators.push_back(sim::makeMega());
    accelerators.push_back(std::make_unique<core::DiTileAccelerator>());

    Table table("Figure 9: execution time in cycles (lower is better)");
    table.setHeader({"Dataset", "ReaDy", "DGNN-Booster", "RACE", "MEGA",
                     "DiTile", "vs ReaDy", "vs Booster", "vs RACE",
                     "vs MEGA"});

    double ratio_sum[4] = {0, 0, 0, 0};
    int rows = 0;
    for (const auto &name : options.datasets) {
        const auto dg = graph::makeDataset(name,
                                           options.datasetOptions());
        double cycles[5];
        for (std::size_t i = 0; i < accelerators.size(); ++i) {
            cycles[i] = static_cast<double>(
                accelerators[i]->run(dg, mconfig).totalCycles);
        }
        for (int b = 0; b < 4; ++b)
            ratio_sum[b] += 1.0 - cycles[4] / cycles[b];
        ++rows;
        table.addRow({dg.name(), Table::sci(cycles[0]),
                      Table::sci(cycles[1]), Table::sci(cycles[2]),
                      Table::sci(cycles[3]), Table::sci(cycles[4]),
                      bench::reduction(cycles[4], cycles[0]),
                      bench::reduction(cycles[4], cycles[1]),
                      bench::reduction(cycles[4], cycles[2]),
                      bench::reduction(cycles[4], cycles[3])});
    }
    if (rows > 1) {
        table.addRow({"Average", "", "", "", "", "",
                      Table::percent(ratio_sum[0] / rows),
                      Table::percent(ratio_sum[1] / rows),
                      Table::percent(ratio_sum[2] / rows),
                      Table::percent(ratio_sum[3] / rows)});
    }
    bench::emit(table, options);
    std::printf("paper: 48.4%% vs ReaDy, 56.1%% vs DGNN-Booster, "
                "23.2%% vs RACE, 36.1%% vs MEGA (average)\n");
    return 0;
}
