/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench accepts:
 *   --scale=F      override the per-dataset default scale factor
 *   --snapshots=T  snapshot count (default 8)
 *   --seed=S       generator seed override
 *   --datasets=PM,RD,...  subset selection
 *   --csv          additionally print the table as CSV
 *   --threads=N    width of the process-wide thread pool (default 1;
 *                  results are bit-identical at any width)
 *   --smoke        reduced-size run for CI crash checks (tiny scale,
 *                  2 snapshots unless overridden)
 */

#ifndef DITILE_BENCH_BENCH_UTIL_HH
#define DITILE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "graph/datasets.hh"
#include "model/dgnn_config.hh"

namespace ditile::bench {

/**
 * Bench-wide workload options parsed from the command line.
 */
struct BenchOptions
{
    double scale = 0.0;
    SnapshotId numSnapshots = 8;
    std::uint64_t seed = 0;
    std::vector<std::string> datasets;
    bool csv = false;
    bool smoke = false;
    int threads = 1;

    static BenchOptions
    parse(int argc, char **argv)
    {
        const CliFlags flags = CliFlags::parse(argc, argv);
        BenchOptions o;
        o.smoke = flags.getBool("smoke", false);
        o.scale = flags.getDouble("scale", o.smoke ? 0.05 : 0.0);
        o.numSnapshots = static_cast<SnapshotId>(
            flags.getInt("snapshots", o.smoke ? 2 : 8));
        o.seed = static_cast<std::uint64_t>(flags.getInt("seed", 0));
        o.csv = flags.getBool("csv", false);
        o.threads = static_cast<int>(flags.getInt("threads", 1));
        ThreadPool::setGlobalThreads(o.threads);
        std::string list = flags.getString(
            "datasets", "PM,RD,MB,TW,WD,FK");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const auto comma = list.find(',', pos);
            const auto end = comma == std::string::npos ? list.size()
                                                        : comma;
            if (end > pos)
                o.datasets.push_back(list.substr(pos, end - pos));
            pos = end + 1;
        }
        return o;
    }

    graph::DatasetOptions
    datasetOptions() const
    {
        graph::DatasetOptions d;
        d.scale = scale;
        d.numSnapshots = numSnapshots;
        d.seed = seed;
        return d;
    }
};

/** The evaluated DGCN model (2-layer GCN + LSTM). */
inline model::DgnnConfig
paperModel()
{
    return model::DgnnConfig{};
}

/** Print the table, optionally followed by CSV. */
inline void
emit(const Table &table, const BenchOptions &options)
{
    table.print();
    if (options.csv)
        std::fputs(table.toCsv().c_str(), stdout);
}

/** "x.y%" reduction of value versus reference. */
inline std::string
reduction(double value, double reference)
{
    if (reference <= 0.0)
        return "n/a";
    return Table::percent(1.0 - value / reference);
}

} // namespace ditile::bench

#endif // DITILE_BENCH_BENCH_UTIL_HH
