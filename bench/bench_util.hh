/**
 * @file
 * Shared helpers for the figure-reproduction benches.
 *
 * Every bench accepts:
 *   --scale=F      override the per-dataset default scale factor
 *   --snapshots=T  snapshot count (default 8)
 *   --seed=S       generator seed override
 *   --datasets=PM,RD,...  subset selection
 *   --csv          additionally print the table as CSV
 *   --threads=N    width of the process-wide thread pool (default 1;
 *                  results are bit-identical at any width)
 *   --smoke        reduced-size run for CI crash checks (tiny scale,
 *                  2 snapshots unless overridden)
 *   --trace=FILE   write a structured Chrome trace of all runs the
 *                  bench performs (written at process exit)
 *   --metrics      dump the hierarchical metrics registry to stderr
 *                  at process exit
 */

#ifndef DITILE_BENCH_BENCH_UTIL_HH
#define DITILE_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "common/trace.hh"
#include "graph/datasets.hh"
#include "model/dgnn_config.hh"

namespace ditile::bench {

/**
 * Bench-wide workload options parsed from the command line.
 */
struct BenchOptions
{
    double scale = 0.0;
    SnapshotId numSnapshots = 8;
    std::uint64_t seed = 0;
    std::vector<std::string> datasets;
    bool csv = false;
    bool smoke = false;
    int threads = 1;
    std::string traceFile;
    bool metrics = false;

    /** --trace=FILE target for the atexit writer (one per process). */
    static std::string &
    traceFileSlot()
    {
        static std::string slot;
        return slot;
    }

    static void
    writeObservabilityAtExit()
    {
        Tracer &tracer = Tracer::global();
        const std::string &path = traceFileSlot();
        if (!path.empty() && tracer.traceEnabled()) {
            tracer.writeChromeJson(path);
            std::fprintf(stderr, "wrote Chrome trace to %s\n",
                         path.c_str());
        }
        if (tracer.metricsEnabled()) {
            for (const auto &[name, value] : tracer.metrics())
                std::fprintf(stderr, "metric %s = %lld\n", name.c_str(),
                             value);
        }
    }

    static BenchOptions
    parse(int argc, char **argv)
    {
        const CliFlags flags = CliFlags::parse(argc, argv);
        BenchOptions o;
        o.smoke = flags.getBool("smoke", false);
        o.scale = flags.getDouble("scale", o.smoke ? 0.05 : 0.0);
        o.numSnapshots = static_cast<SnapshotId>(
            flags.getInt("snapshots", o.smoke ? 2 : 8));
        o.seed = static_cast<std::uint64_t>(flags.getInt("seed", 0));
        o.csv = flags.getBool("csv", false);
        o.threads = static_cast<int>(flags.getInt("threads", 1));
        ThreadPool::setGlobalThreads(o.threads);
        const auto trace_arg = flags.getString("trace", "");
        o.traceFile = trace_arg == "1" ? "" : trace_arg;
        o.metrics = flags.getBool("metrics", false);
        if (!o.traceFile.empty() || o.metrics) {
            Tracer &tracer = Tracer::global();
            tracer.reset();
            tracer.enable(!o.traceFile.empty(), o.metrics);
            traceFileSlot() = o.traceFile;
            // Benches exit from many places; flush on the way out.
            std::atexit(&writeObservabilityAtExit);
        }
        std::string list = flags.getString(
            "datasets", "PM,RD,MB,TW,WD,FK");
        std::size_t pos = 0;
        while (pos < list.size()) {
            const auto comma = list.find(',', pos);
            const auto end = comma == std::string::npos ? list.size()
                                                        : comma;
            if (end > pos)
                o.datasets.push_back(list.substr(pos, end - pos));
            pos = end + 1;
        }
        return o;
    }

    graph::DatasetOptions
    datasetOptions() const
    {
        graph::DatasetOptions d;
        d.scale = scale;
        d.numSnapshots = numSnapshots;
        d.seed = seed;
        return d;
    }
};

/** The evaluated DGCN model (2-layer GCN + LSTM). */
inline model::DgnnConfig
paperModel()
{
    return model::DgnnConfig{};
}

/** Print the table, optionally followed by CSV. */
inline void
emit(const Table &table, const BenchOptions &options)
{
    table.print();
    if (options.csv)
        std::fputs(table.toCsv().c_str(), stdout);
}

/** "x.y%" reduction of value versus reference. */
inline std::string
reduction(double value, double reference)
{
    if (reference <= 0.0)
        return "n/a";
    return Table::percent(1.0 - value / reference);
}

} // namespace ditile::bench

#endif // DITILE_BENCH_BENCH_UTIL_HH
