/**
 * @file
 * Extension bench: scaling with the tile-array size.
 *
 * The paper's contribution list claims the workload optimization
 * "enhances scalability"; this bench sweeps the array from 4x4 to
 * 32x32 on one dataset and reports DiTile's execution time against
 * the strongest baseline (RACE) at each size.
 */

#include <memory>

#include "bench/bench_util.hh"
#include "core/ditile_accelerator.hh"
#include "sim/baselines.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv);
    if (options.datasets.size() > 1)
        options.datasets = {"RD"};
    const auto mconfig = bench::paperModel();
    const auto dg = graph::makeDataset(options.datasets.front(),
                                       options.datasetOptions());

    Table table("Scalability: tile-array sweep on " + dg.name());
    table.setHeader({"Array", "Tiles", "DiTile cycles",
                     "RACE cycles", "DiTile vs RACE",
                     "DiTile speedup vs 4x4"});
    double base_cycles = 0.0;
    for (int dim : {4, 8, 16, 32}) {
        auto hw = sim::AcceleratorConfig::defaults();
        hw.tileRows = dim;
        hw.tileCols = dim;
        hw.noc.rows = dim;
        hw.noc.cols = dim;
        core::DiTileAccelerator ditile(hw);
        auto race = sim::makeRace(hw);
        const auto dt = static_cast<double>(
            ditile.run(dg, mconfig).totalCycles);
        const auto rc = static_cast<double>(
            race->run(dg, mconfig).totalCycles);
        if (base_cycles == 0.0)
            base_cycles = dt;
        table.addRow({Table::integer(dim) + "x" + Table::integer(dim),
                      Table::integer(dim * dim), Table::sci(dt),
                      Table::sci(rc), bench::reduction(dt, rc),
                      Table::num(base_cycles / dt, 2) + "x"});
    }
    bench::emit(table, options);
    return 0;
}
