/**
 * @file
 * Figure 13: sensitivity to the inter-snapshot dissimilarity
 * proportion (WD dataset).
 *
 * Paper result: DiTile-DGNN cuts execution time by 65.8%, 41.9% and
 * 33.8% versus the baselines as dissimilarity moves through 0-5%,
 * 5-10% and 10-15% — the advantage shrinks as dissimilarity grows but
 * never disappears.
 */

#include <memory>

#include "bench/bench_util.hh"
#include "core/ditile_accelerator.hh"
#include "sim/baselines.hh"

using namespace ditile;

int
main(int argc, char **argv)
{
    auto options = bench::BenchOptions::parse(argc, argv);
    if (options.datasets.size() > 1)
        options.datasets = {"WD"};
    // A longer horizon amortizes the cold first snapshot so the
    // steady-state sensitivity shows (the paper's DGNN applications
    // run long snapshot streams).
    if (options.numSnapshots == 8)
        options.numSnapshots = 16;
    const auto mconfig = bench::paperModel();

    std::vector<std::unique_ptr<sim::Accelerator>> accelerators;
    accelerators.push_back(sim::makeReady());
    accelerators.push_back(sim::makeDgnnBooster());
    accelerators.push_back(sim::makeRace());
    accelerators.push_back(sim::makeMega());
    accelerators.push_back(std::make_unique<core::DiTileAccelerator>());

    // Band centers for 0-5%, 5-10%, 10-15%.
    const std::vector<std::pair<std::string, double>> bands = {
        {"0-5%", 0.025}, {"5-10%", 0.075}, {"10-15%", 0.125},
    };

    Table table("Figure 13: execution time normalized to DiTile-DGNN "
                "at equal dissimilarity (WD)");
    table.setHeader({"Dissimilarity", "ReaDy", "DGNN-Booster", "RACE",
                     "MEGA", "DiTile", "avg reduction"});

    for (const auto &[label, dis] : bands) {
        auto dopts = options.datasetOptions();
        dopts.dissimilarity = dis;
        const auto dg = graph::makeDataset(options.datasets.front(),
                                           dopts);
        std::vector<double> cycles;
        for (auto &acc : accelerators)
            cycles.push_back(static_cast<double>(
                acc->run(dg, mconfig).totalCycles));
        const double base = cycles.back();
        double reduction_sum = 0.0;
        for (std::size_t i = 0; i + 1 < cycles.size(); ++i)
            reduction_sum += 1.0 - base / cycles[i];
        table.addRow({label, Table::num(cycles[0] / base),
                      Table::num(cycles[1] / base),
                      Table::num(cycles[2] / base),
                      Table::num(cycles[3] / base), "1.00",
                      Table::percent(reduction_sum / 4.0)});
    }
    bench::emit(table, options);
    std::printf("paper: 65.8%% / 41.9%% / 33.8%% average reductions "
                "across the three bands\n");
    return 0;
}
