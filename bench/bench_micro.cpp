/**
 * @file
 * Google-benchmark micro benchmarks of the simulator substrates:
 * graph generation, CSR construction, frontier expansion, workload
 * labeling, NoC replay, DRAM replay, and the functional kernels.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/simd.hh"
#include "dram/dram_model.hh"
#include "graph/generator.hh"
#include "model/functional.hh"
#include "model/incremental.hh"
#include "noc/flit_network.hh"
#include "noc/network.hh"
#include "sim/engine_internal.hh"
#include "sim/tile_model.hh"
#include "workload/balance.hh"
#include "workload/digest.hh"
#include "workload/slot_arrays.hh"

using namespace ditile;

namespace {

graph::Csr
makeGraph(VertexId vertices, EdgeId edges, std::uint64_t seed = 7)
{
    Rng rng(seed);
    return graph::generateRmat(vertices, edges, {}, rng);
}

void
BM_RmatGenerate(benchmark::State &state)
{
    const auto vertices = static_cast<VertexId>(state.range(0));
    for (auto _ : state) {
        Rng rng(11);
        auto g = graph::generateRmat(vertices, vertices * 8, {}, rng);
        benchmark::DoNotOptimize(g.numEdges());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0) * 8);
}
BENCHMARK(BM_RmatGenerate)->Arg(1 << 10)->Arg(1 << 14);

void
BM_CsrFromEdges(benchmark::State &state)
{
    const auto vertices = static_cast<VertexId>(state.range(0));
    const auto g = makeGraph(vertices, vertices * 8);
    const auto edges = g.edgeList();
    for (auto _ : state) {
        auto rebuilt = graph::Csr::fromEdges(vertices, edges);
        benchmark::DoNotOptimize(rebuilt.numAdjacencies());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(edges.size()));
}
BENCHMARK(BM_CsrFromEdges)->Arg(1 << 12)->Arg(1 << 15);

void
BM_FrontierExpansion(benchmark::State &state)
{
    const auto g = makeGraph(1 << 14, 1 << 17);
    std::vector<VertexId> seeds;
    for (VertexId v = 0; v < 256; ++v)
        seeds.push_back(v * 17 % g.numVertices());
    std::sort(seeds.begin(), seeds.end());
    for (auto _ : state) {
        auto out = graph::expandFrontier(g, seeds, 2);
        benchmark::DoNotOptimize(out.size());
    }
}
BENCHMARK(BM_FrontierExpansion);

void
BM_WorkloadLabeling(benchmark::State &state)
{
    const auto g = makeGraph(static_cast<VertexId>(state.range(0)),
                             state.range(0) * 8);
    for (auto _ : state) {
        auto loads = workload::computeSnapshotLoads(g, 2);
        benchmark::DoNotOptimize(loads.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WorkloadLabeling)->Arg(1 << 12)->Arg(1 << 15);

void
BM_BalancedPartition(benchmark::State &state)
{
    const auto g = makeGraph(1 << 15, 1 << 18);
    const auto loads = workload::computeSnapshotLoads(g, 2);
    for (auto _ : state) {
        auto p = workload::balancedPartition(loads, 16);
        benchmark::DoNotOptimize(p.numParts());
    }
}
BENCHMARK(BM_BalancedPartition);

void
BM_NocReplay(benchmark::State &state)
{
    noc::NocConfig config;
    config.topology = static_cast<noc::TopologyKind>(state.range(0));
    Rng rng(3);
    std::vector<noc::Message> msgs;
    for (int i = 0; i < 4096; ++i) {
        noc::Message m;
        m.src = static_cast<TileId>(rng.uniformInt(0, 255));
        m.dst = static_cast<TileId>(rng.uniformInt(0, 255));
        m.bytes = static_cast<ByteCount>(rng.uniformInt(64, 4096));
        msgs.push_back(m);
    }
    for (auto _ : state) {
        auto res = noc::simulateTraffic(config, msgs);
        benchmark::DoNotOptimize(res.makespan);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_NocReplay)
    ->Arg(static_cast<int>(noc::TopologyKind::Mesh))
    ->Arg(static_cast<int>(noc::TopologyKind::Crossbar))
    ->Arg(static_cast<int>(noc::TopologyKind::Reconfigurable));

void
BM_FlitNocReplay(benchmark::State &state)
{
    noc::FlitConfig config;
    config.noc.rows = 8;
    config.noc.cols = 8;
    Rng rng(4);
    std::vector<noc::Message> msgs;
    for (int i = 0; i < 256; ++i) {
        noc::Message m;
        m.src = static_cast<TileId>(rng.uniformInt(0, 63));
        m.dst = static_cast<TileId>(rng.uniformInt(0, 63));
        m.bytes = static_cast<ByteCount>(rng.uniformInt(64, 1024));
        msgs.push_back(m);
    }
    for (auto _ : state) {
        auto res = noc::simulateFlitTraffic(config, msgs);
        benchmark::DoNotOptimize(res.makespan);
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_FlitNocReplay);

void
BM_TileModelSchedule(benchmark::State &state)
{
    sim::TileModel tile;
    Rng rng(6);
    std::vector<sim::VertexTask> tasks;
    for (int i = 0; i < 2048; ++i) {
        sim::VertexTask t;
        t.macs = static_cast<OpCount>(rng.uniformInt(64, 2048));
        t.postOps = 32;
        t.inputBytes = 512;
        tasks.push_back(t);
    }
    for (auto _ : state) {
        auto res = tile.executePhase(tasks);
        benchmark::DoNotOptimize(res.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 2048);
}
BENCHMARK(BM_TileModelSchedule);

void
BM_DramReplay(benchmark::State &state)
{
    dram::DramModel model;
    std::vector<dram::DramRequest> reqs;
    Rng rng(5);
    for (int i = 0; i < 512; ++i) {
        reqs.push_back({static_cast<std::uint64_t>(
                            rng.uniformInt(0, 1 << 28)),
                        static_cast<ByteCount>(
                            rng.uniformInt(256, 1 << 16)),
                        i % 3 == 0, 0});
    }
    for (auto _ : state) {
        model.reset();
        auto res = model.service(reqs);
        benchmark::DoNotOptimize(res.completionCycle);
    }
}
BENCHMARK(BM_DramReplay);

void
BM_GcnLayerFunctional(benchmark::State &state)
{
    const auto g = makeGraph(512, 4096);
    Rng rng(9);
    auto x = model::Matrix::random(g.numVertices(), 64, rng);
    auto w = model::Matrix::random(64, 32, rng);
    for (auto _ : state) {
        auto out = model::gcnLayer(g, x, w);
        benchmark::DoNotOptimize(out.data().data());
    }
}
BENCHMARK(BM_GcnLayerFunctional);

void
BM_LstmStepFunctional(benchmark::State &state)
{
    model::DgnnConfig config;
    config.gcnDims = {64, 32};
    config.lstmHidden = 32;
    auto weights = model::DgnnWeights::random(config, 64, 13);
    Rng rng(17);
    auto z = model::Matrix::random(512, 32, rng);
    model::Matrix h(512, 32);
    model::Matrix c(512, 32);
    for (auto _ : state) {
        model::lstmStep(z, weights, h, c);
        benchmark::DoNotOptimize(h.data().data());
    }
}
BENCHMARK(BM_LstmStepFunctional);

void
BM_IncrementalPlanning(benchmark::State &state)
{
    graph::EvolutionConfig config;
    config.numVertices = 1 << 13;
    config.numEdges = 1 << 16;
    config.numSnapshots = 8;
    const auto dg = graph::generateDynamicGraph(config);
    const model::DgnnConfig mconfig;
    for (auto _ : state) {
        model::IncrementalPlanner planner(dg, mconfig,
                                          model::AlgoKind::DiTileAlg);
        benchmark::DoNotOptimize(planner.plan(7).rnnVertices.size());
    }
}
BENCHMARK(BM_IncrementalPlanning);

// ---- SoA / SIMD hot-path kernels (ROADMAP item 5) ----

/** Arg(0): SIMD gate off (scalar fallback); Arg(1): on. */
void
BM_F64Axpy(benchmark::State &state)
{
    simd::setSimdEnabled(state.range(0) != 0);
    const std::size_t n = 1 << 14;
    std::vector<double> dst(n, 0.5), src(n, 1.25);
    for (auto _ : state) {
        simd::f64Axpy(dst.data(), src.data(), 0.999, n);
        benchmark::DoNotOptimize(dst.data());
    }
    simd::setSimdEnabled(true);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(n));
}
BENCHMARK(BM_F64Axpy)->Arg(0)->Arg(1);

void
BM_U64Add(benchmark::State &state)
{
    simd::setSimdEnabled(state.range(0) != 0);
    const std::size_t n = 1 << 14;
    std::vector<std::uint64_t> dst(n, 3), src(n, 7);
    for (auto _ : state) {
        simd::u64Add(dst.data(), src.data(), n);
        benchmark::DoNotOptimize(dst.data());
    }
    simd::setSimdEnabled(true);
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(n));
}
BENCHMARK(BM_U64Add)->Arg(0)->Arg(1);

/** The scratch slot-census kernel over one CSR snapshot. */
void
BM_SlotScratchKernel(benchmark::State &state)
{
    const auto g = makeGraph(1 << 14, 1 << 17);
    const int slots = 16;
    std::vector<int> owners(
        static_cast<std::size_t>(g.numVertices()));
    for (VertexId v = 0; v < g.numVertices(); ++v)
        owners[static_cast<std::size_t>(v)] = v % slots;
    std::vector<std::int32_t> edge_owner;
    workload::buildEdgeOwnerIndex(g, owners, edge_owner);
    std::vector<std::uint64_t> deg(slots);
    std::vector<std::uint64_t> cross(
        static_cast<std::size_t>(slots) * slots);
    std::vector<std::uint64_t> hist(
        static_cast<std::size_t>(slots) / 2 + 1);
    for (auto _ : state) {
        workload::countSlotEdges(g, owners, edge_owner.data(), slots,
                                 deg.data(), cross.data());
        workload::distanceHistogram(cross.data(), slots, hist.data());
        benchmark::DoNotOptimize(hist.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numAdjacencies());
}
BENCHMARK(BM_SlotScratchKernel);

void
BM_EdgeOwnerIndex(benchmark::State &state)
{
    const auto g = makeGraph(1 << 14, 1 << 17);
    const int slots = 16;
    std::vector<int> owners(
        static_cast<std::size_t>(g.numVertices()));
    for (VertexId v = 0; v < g.numVertices(); ++v)
        owners[static_cast<std::size_t>(v)] = v % slots;
    std::vector<std::int32_t> edge_owner;
    for (auto _ : state) {
        workload::buildEdgeOwnerIndex(g, owners, edge_owner);
        benchmark::DoNotOptimize(edge_owner.data());
    }
    state.SetItemsProcessed(state.iterations() * g.numAdjacencies());
}
BENCHMARK(BM_EdgeOwnerIndex);

/** Full digest build including the delta patch path. */
void
BM_PartitionDigestBuild(benchmark::State &state)
{
    graph::EvolutionConfig config;
    config.numVertices = 1 << 13;
    config.numEdges = 1 << 16;
    config.numSnapshots = 8;
    config.dissimilarity = 0.06;
    const auto dg = graph::generateDynamicGraph(config);
    const int slots = 16;
    std::vector<int> owners(
        static_cast<std::size_t>(dg.numVertices()));
    for (VertexId v = 0; v < dg.numVertices(); ++v)
        owners[static_cast<std::size_t>(v)] = v % slots;
    for (auto _ : state) {
        auto d = workload::buildPartitionDigest(dg, owners, slots);
        benchmark::DoNotOptimize(d.arrays.cross.data());
    }
    state.SetItemsProcessed(state.iterations() * dg.numSnapshots());
}
BENCHMARK(BM_PartitionDigestBuild);

/** Touched-cell accumulate + diagonal clear + mix64-ordered drain. */
void
BM_DenseTrafficDrain(benchmark::State &state)
{
    const int slots = 64;
    sim::detail::DenseTraffic traffic(slots);
    std::vector<noc::Message> out;
    std::uint64_t x = 99;
    for (auto _ : state) {
        traffic.reset(slots);
        for (int i = 0; i < 4096; ++i) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            traffic.add(static_cast<int>(x % slots),
                        static_cast<int>((x >> 8) % slots),
                        64 + (x >> 16) % 256);
        }
        traffic.clearDiagonal();
        out.clear();
        traffic.emit(
            out, noc::TrafficClass::Spatial, 0,
            [](int s) { return static_cast<TileId>(s); },
            [](int s) { return static_cast<TileId>(s); });
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_DenseTrafficDrain);

} // namespace

int
main(int argc, char **argv)
{
    // --smoke: CI mode — one short pass per benchmark, translated to
    // the bare-double --benchmark_min_time form this benchmark
    // version accepts.
    static char min_time[] = "--benchmark_min_time=0.01";
    std::vector<char *> args(argv, argv + argc);
    for (auto &arg : args)
        if (std::strcmp(arg, "--smoke") == 0)
            arg = min_time;
    int patched_argc = static_cast<int>(args.size());
    benchmark::Initialize(&patched_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(patched_argc,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
